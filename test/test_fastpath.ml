(* Inline-check fast-path equivalence (§3.3 / PR "inline-check fast
   paths").

   Two independent oracles pin the fast path down:

   - Per-kernel parity: every compiled {!Dsm.Prog} kernel the apps run
     (LU's daxpy row, the water integrate, Barnes' integrate, Ocean's
     red-black row and rhs prefetch, FMM's expansion-vector transfers)
     is executed twice on identical machines — once interpreted, once as
     the closure formulation it replaced — on a contended SMP
     configuration. Finish cycles, memory, per-op hook streams and
     (normalized) statistics must be identical, with the fused hit check
     on and off, observed and unobserved.

   - A QCheck property: random programs against a closure interpreter
     of the same instruction list, under all four
     (observed × fastpath) combinations.

   [fast_hits] records how many accesses took the fused first-level
   check and [prog_accesses] which dispatch mechanism issued them; both
   are observability counters that the equivalence deliberately varies,
   so they are zeroed before statistics are compared. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Stats = Shasta_core.Stats
module Observer = Shasta_core.Observer
module Kernels = Shasta_apps.Kernels

let smp ~fastpath () =
  Dsm.create
    (Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 ~fastpath ())

type outcome = {
  values : int64 array;  (* bits, so NaNs and -0.0 compare exactly *)
  cycles : int;
  stats : Stats.t;
  events : (char * int * int * int * int) list;
}

let norm st = { st with Stats.prog_accesses = 0; Stats.fast_hits = 0 }

(* Run [body] on a fresh machine; [init] seeds memory and returns the
   addresses to read back afterwards. *)
let execute ~fastpath ~record ~init ~body =
  let h = smp ~fastpath () in
  let watch = init h in
  let events = ref [] in
  if record then
    Dsm.add_observer h
      {
        Observer.nil with
        on_load =
          (fun ~proc ~addr ~len ~now ->
            events := ('L', proc, addr, len, now) :: !events);
        on_store =
          (fun ~proc ~addr ~len ~now ->
            events := ('S', proc, addr, len, now) :: !events);
      };
  Dsm.run h (fun ctx -> body ctx);
  {
    values =
      Array.map (fun a -> Int64.bits_of_float (Dsm.peek_float h a)) watch;
    cycles = Dsm.parallel_cycles h;
    stats = Dsm.aggregate_stats h;
    events = List.rev !events;
  }

(* Closure-vs-program parity under one (fastpath, record) combination:
   everything but the dispatch counters must coincide. *)
let check_one ~name ~fastpath ~record ~init ~closure ~prog =
  let c = execute ~fastpath ~record ~init ~body:closure in
  let p = execute ~fastpath ~record ~init ~body:prog in
  let tag fmt = Printf.sprintf "%s fp=%b rec=%b %s" name fastpath record fmt in
  Alcotest.(check (array int64)) (tag "values") c.values p.values;
  Alcotest.(check int) (tag "cycles") c.cycles p.cycles;
  Alcotest.(check bool) (tag "stats") true (norm c.stats = norm p.stats);
  Alcotest.(check bool) (tag "hook stream") true (c.events = p.events);
  if record then
    Alcotest.(check bool)
      (tag "hooks fired")
      true
      (List.length p.events > 0);
  p

(* The full matrix for one kernel: both toggles, observed and
   unobserved, plus the cross-cutting invariants — the toggle must not
   move a single cycle or value, and the observed interpreter must land
   on the unobserved one's finish clock. *)
let check_kernel ~name ~init ~closure ~prog () =
  let on_obs = check_one ~name ~fastpath:true ~record:true ~init ~closure ~prog in
  let on_un = check_one ~name ~fastpath:true ~record:false ~init ~closure ~prog in
  let off_obs =
    check_one ~name ~fastpath:false ~record:true ~init ~closure ~prog
  in
  let off_un =
    check_one ~name ~fastpath:false ~record:false ~init ~closure ~prog
  in
  Alcotest.(check int) (name ^ " observed = unobserved cycles") on_un.cycles
    on_obs.cycles;
  Alcotest.(check int) (name ^ " toggle keeps cycles") on_un.cycles
    off_un.cycles;
  Alcotest.(check (array int64)) (name ^ " toggle keeps values") on_un.values
    off_un.values;
  Alcotest.(check bool) (name ^ " toggle keeps stats") true
    (norm on_obs.stats = norm off_obs.stats);
  Alcotest.(check bool) (name ^ " toggle keeps hooks") true
    (on_obs.events = off_obs.events);
  Alcotest.(check bool) (name ^ " prog ran as prog") true
    (on_un.stats.Stats.prog_accesses > 0)

(* ------------------------------------------------------------------ *)
(* Kernel 1: LU's daxpy row, two processors on distinct nodes sharing
   the dst block (element-disjoint halves — block-contended). *)

let fms_len = 8
let fms_cost = 6

let fms_init h =
  let dst = Dsm.alloc_floats h ~block_size:128 16 in
  let src = Dsm.alloc_floats h ~block_size:128 16 in
  for i = 0 to 15 do
    Dsm.poke_float h (dst + (8 * i)) (float_of_int (10 + i));
    Dsm.poke_float h (src + (8 * i)) (0.5 *. float_of_int i)
  done;
  (dst, src)

let fms_half (dst, src) p = if p = 0 then (dst, src) else (dst + 64, src + 64)

let fms_body ~use_prog (dst0, src0) ctx =
  let p = Dsm.pid ctx in
  if p = 0 || p = 4 then begin
    let dst, src = fms_half (dst0, src0) (if p = 0 then 0 else 1) in
    let s = 2.0 in
    for _round = 1 to 3 do
      Dsm.batch ctx
        [ (dst, fms_len * 8, Dsm.W); (src, fms_len * 8, Dsm.R) ]
        (fun () ->
          if use_prog then
            let prog = Dsm.Prog.fms_row ~len:fms_len ~cost:fms_cost in
            Dsm.Prog.run ctx prog ~s ~aux:Dsm.Prog.no_aux ~base0:dst
              ~base1:src ~base2:0
          else
            for c = 0 to fms_len - 1 do
              let v = Dsm.Batch.load_float ctx (src + (8 * c)) in
              let d = Dsm.Batch.load_float ctx (dst + (8 * c)) in
              Dsm.Batch.store_float ctx (dst + (8 * c)) (d -. (s *. v));
              Dsm.compute ctx fms_cost
            done);
      Dsm.compute ctx 40
    done
  end

let test_fms () =
  let watch = ref [||] in
  check_kernel ~name:"fms_row"
    ~init:(fun h ->
      let dst, src = fms_init h in
      watch := [| dst; src |];
      Array.init 16 (fun i -> dst + (8 * i)))
    ~closure:(fun ctx -> fms_body ~use_prog:false (!watch.(0), !watch.(1)) ctx)
    ~prog:(fun ctx -> fms_body ~use_prog:true (!watch.(0), !watch.(1)) ctx)
    ()

(* ------------------------------------------------------------------ *)
(* Kernel 2: the water integrate — 9-float molecules, two per 128-byte
   block so the two integrating processors contend. *)

let w_dt = 0.002
let w_box = 4.0
let w_flop = 5

let wrap q box = if q < 0.0 then q +. box else if q >= box then q -. box else q

let water_init h =
  (* Four 9-float molecules plus slack: 40 floats, 128-byte blocks, so
     molecule boundaries fall mid-block and neighbours contend. *)
  let mols = Dsm.alloc_floats h ~block_size:128 40 in
  for i = 0 to 39 do
    Dsm.poke_float h (mols + (8 * i)) (wrap (0.37 *. float_of_int i) w_box)
  done;
  mols

let water_closure_mol ctx m =
  for d = 0 to 2 do
    let fdt = Dsm.Batch.load_float ctx (m + (8 * (6 + d))) *. w_dt in
    let v' = Dsm.Batch.load_float ctx (m + (8 * (3 + d))) +. fdt in
    Dsm.Batch.store_float ctx (m + (8 * (3 + d))) v';
    let vdt = v' *. w_dt in
    let x' = Dsm.Batch.load_float ctx (m + (8 * d)) +. vdt in
    let x' = wrap x' w_box in
    Dsm.Batch.store_float ctx (m + (8 * d)) x';
    Dsm.Batch.store_float ctx (m + (8 * (6 + d))) 0.0;
    Dsm.compute ctx (4 * w_flop)
  done

let water_body ~use_prog mols ctx =
  let p = Dsm.pid ctx in
  if p = 0 || p = 4 then begin
    let integ =
      if use_prog then
        Some (Kernels.water_integrate ~dt:w_dt ~box:w_box ~flop_cycles:w_flop)
      else None
    in
    (* Contiguous ownership like the real app: the range boundary falls
       mid-block, so the two processors contend on the shared block. *)
    let mine = if p = 0 then [ 0; 1 ] else [ 2; 3 ] in
    List.iter
      (fun i ->
        let m = mols + (72 * i) in
        Dsm.batch ctx
          [ (m, 72, Dsm.W) ]
          (fun () ->
            match integ with
            | Some prog ->
              Dsm.Prog.run ctx prog ~s:0.0 ~aux:Dsm.Prog.no_aux ~base0:m
                ~base1:0 ~base2:0
            | None -> water_closure_mol ctx m);
        Dsm.compute ctx 25)
      mine
  end

let test_water () =
  let mols = ref 0 in
  check_kernel ~name:"water_integrate"
    ~init:(fun h ->
      mols := water_init h;
      Array.init 36 (fun i -> !mols + (8 * i)))
    ~closure:(fun ctx -> water_body ~use_prog:false !mols ctx)
    ~prog:(fun ctx -> water_body ~use_prog:true !mols ctx)
    ()

(* ------------------------------------------------------------------ *)
(* Kernel 3: Barnes' integrate — the checked (outside-batch) variant. *)

let barnes_closure_body ctx b =
  for d = 0 to 2 do
    let fdt = Dsm.load_float ctx (b + (8 * (6 + d))) *. w_dt in
    let v' = Dsm.load_float ctx (b + (8 * (3 + d))) +. fdt in
    Dsm.store_float ctx (b + (8 * (3 + d))) v';
    let vdt = v' *. w_dt in
    let x' = Dsm.load_float ctx (b + (8 * d)) +. vdt in
    Dsm.store_float ctx (b + (8 * d)) x';
    Dsm.compute ctx (4 * w_flop)
  done

let barnes_body ~use_prog bodies ctx =
  let p = Dsm.pid ctx in
  if p = 0 || p = 4 then begin
    let iprog =
      if use_prog then
        Some (Kernels.barnes_integrate ~dt:w_dt ~flop_cycles:w_flop)
      else None
    in
    let mine = if p = 0 then [ 0; 1 ] else [ 2; 3 ] in
    List.iter
      (fun i ->
        let b = bodies + (72 * i) in
        (match iprog with
        | Some prog ->
          Dsm.Prog.run ctx prog ~s:0.0 ~aux:Dsm.Prog.no_aux ~base0:b ~base1:0
            ~base2:0
        | None -> barnes_closure_body ctx b);
        Dsm.compute ctx 25)
      mine
  end

let test_barnes () =
  let bodies = ref 0 in
  check_kernel ~name:"barnes_integrate"
    ~init:(fun h ->
      bodies := water_init h;
      Array.init 36 (fun i -> !bodies + (8 * i)))
    ~closure:(fun ctx -> barnes_body ~use_prog:false !bodies ctx)
    ~prog:(fun ctx -> barnes_body ~use_prog:true !bodies ctx)
    ()

(* ------------------------------------------------------------------ *)
(* Kernels 4 and 5: Ocean's red-black SOR row and its checked rhs
   prefetch. Two processors sweep adjacent interior rows of a shared
   grid (each row one block; neighbour rows contended). *)

let oc_n = 6 (* interior columns 1..6, row stride 8 floats *)
let oc_omega = 1.1
let oc_cell = 9
let oc_stride = 8 * 8

let ocean_init h =
  let grid = Dsm.alloc_floats h ~block_size:64 32 in
  let rhs = Dsm.alloc_floats h ~block_size:64 32 in
  for i = 0 to 31 do
    Dsm.poke_float h (grid + (8 * i)) (Float.of_int ((i * 7 mod 13) - 6) /. 3.0);
    Dsm.poke_float h (rhs + (8 * i)) (Float.of_int (i mod 5) /. 7.0)
  done;
  (grid, rhs)

let ocean_closure_rhs ctx rhs_row frow ~jstart =
  let j = ref jstart in
  while !j <= oc_n do
    frow.(!j) <- Dsm.load_float ctx (rhs_row + (8 * !j));
    j := !j + 2
  done

let ocean_closure_row ctx ~im1 ~ip1 ~row frow ~jstart =
  let j = ref jstart in
  while !j <= oc_n do
    let jj = !j in
    let v =
      0.25
      *. (Dsm.Batch.load_float ctx (im1 + (8 * jj))
          +. Dsm.Batch.load_float ctx (ip1 + (8 * jj))
          +. Dsm.Batch.load_float ctx (row + (8 * (jj - 1)))
          +. Dsm.Batch.load_float ctx (row + (8 * (jj + 1)))
         -. frow.(jj))
    in
    let old = Dsm.Batch.load_float ctx (row + (8 * jj)) in
    Dsm.Batch.store_float ctx (row + (8 * jj))
      (((1.0 -. oc_omega) *. old) +. (oc_omega *. v));
    Dsm.compute ctx oc_cell;
    j := jj + 2
  done

let ocean_body ~use_prog (grid, rhs) ctx =
  let p = Dsm.pid ctx in
  if p = 0 || p = 4 then begin
    let i = if p = 0 then 1 else 2 (* adjacent interior rows *) in
    let row = grid + (i * oc_stride) in
    let im1 = grid + ((i - 1) * oc_stride) in
    let ip1 = grid + ((i + 1) * oc_stride) in
    let rhs_row = rhs + (i * oc_stride) in
    let frow = Array.make (oc_n + 2) 0.0 in
    let jstart = 1 + (i mod 2) in
    let rhs_p = if use_prog then Some (Kernels.ocean_rhs_row ~n:oc_n ~jstart) else None in
    let row_p =
      if use_prog then
        Some (Kernels.ocean_row ~n:oc_n ~jstart ~omega:oc_omega ~cell_cycles:oc_cell)
      else None
    in
    (match rhs_p with
    | Some prog ->
      Dsm.Prog.run ctx prog ~s:0.0 ~aux:frow ~base0:rhs_row ~base1:0 ~base2:0
    | None -> ocean_closure_rhs ctx rhs_row frow ~jstart);
    Dsm.batch ctx
      [
        (im1, oc_stride, Dsm.R); (ip1, oc_stride, Dsm.R); (row, oc_stride, Dsm.W);
      ]
      (fun () ->
        match row_p with
        | Some prog ->
          Dsm.Prog.run ctx prog ~s:0.0 ~aux:frow ~base0:im1 ~base1:ip1
            ~base2:row
        | None -> ocean_closure_row ctx ~im1 ~ip1 ~row frow ~jstart);
    Dsm.compute ctx 30
  end

let test_ocean () =
  let mem = ref (0, 0) in
  check_kernel ~name:"ocean_row"
    ~init:(fun h ->
      mem := ocean_init h;
      let grid, _ = !mem in
      Array.init 32 (fun i -> grid + (8 * i)))
    ~closure:(fun ctx -> ocean_body ~use_prog:false !mem ctx)
    ~prog:(fun ctx -> ocean_body ~use_prog:true !mem ctx)
    ()

(* ------------------------------------------------------------------ *)
(* Kernel 6: FMM's expansion-vector read/write transfers. Processor 4
   copies a vector processor 0 just wrote, through host scratch. *)

let vk = 10

let vec_body ~use_prog (va, vb) ctx =
  let p = Dsm.pid ctx in
  let a = Array.make vk 0.0 in
  if p = 0 then
    Dsm.batch ctx
      [ (va, vk * 8, Dsm.W) ]
      (fun () ->
        if use_prog then begin
          for i = 0 to vk - 1 do
            a.(i) <- 1.5 +. float_of_int i
          done;
          Dsm.Prog.run ctx (Kernels.vec_write ~k:vk) ~s:0.0 ~aux:a ~base0:va
            ~base1:0 ~base2:0
        end
        else
          for i = 0 to vk - 1 do
            Dsm.Batch.store_float ctx (va + (8 * i)) (1.5 +. float_of_int i)
          done)
  else if p = 4 then begin
    Dsm.compute ctx 400;
    Dsm.batch ctx
      [ (va, vk * 8, Dsm.R) ]
      (fun () ->
        if use_prog then
          Dsm.Prog.run ctx (Kernels.vec_read ~k:vk) ~s:0.0 ~aux:a ~base0:va
            ~base1:0 ~base2:0
        else
          for i = 0 to vk - 1 do
            a.(i) <- Dsm.Batch.load_float ctx (va + (8 * i))
          done);
    Dsm.batch ctx
      [ (vb, vk * 8, Dsm.W) ]
      (fun () ->
        if use_prog then
          Dsm.Prog.run ctx (Kernels.vec_write ~k:vk) ~s:0.0 ~aux:a ~base0:vb
            ~base1:0 ~base2:0
        else
          for i = 0 to vk - 1 do
            Dsm.Batch.store_float ctx (vb + (8 * i)) a.(i)
          done)
  end

let test_vec () =
  let mem = ref (0, 0) in
  check_kernel ~name:"vec_transfer"
    ~init:(fun h ->
      let va = Dsm.alloc_floats h ~block_size:64 vk in
      let vb = Dsm.alloc_floats h ~block_size:64 vk in
      mem := (va, vb);
      Array.append
        (Array.init vk (fun i -> va + (8 * i)))
        (Array.init vk (fun i -> vb + (8 * i))))
    ~closure:(fun ctx -> vec_body ~use_prog:false !mem ctx)
    ~prog:(fun ctx -> vec_body ~use_prog:true !mem ctx)
    ()

(* ------------------------------------------------------------------ *)
(* Random programs against a closure interpreter of the same
   instruction list — the oracle defines each opcode with the exact
   memory-op order and floating-point expression shape the compiled
   interpreter uses, so every observable must match bit-for-bit. *)

let qc_consts = [| 2.0; 64.0; 0.5 |]
let qc_nregs = 4
let qc_naux = 8
let qc_slots = 16 (* floats per array *)

let oracle ctx instrs ~s ~aux ~base0 ~base1 ~base2 =
  let regs = Array.make qc_nregs 0.0 in
  let base = function 0 -> base0 | 1 -> base1 | _ -> base2 in
  List.iter
    (fun (i : Dsm.Prog.instr) ->
      match i with
      | Dsm.Prog.Ldf (r, b, off) ->
        regs.(r) <- Dsm.Batch.load_float ctx (base b + off)
      | Dsm.Prog.Stf (r, b, off) ->
        Dsm.Batch.store_float ctx (base b + off) regs.(r)
      | Dsm.Prog.Cldf (r, b, off) ->
        regs.(r) <- Dsm.load_float ctx (base b + off)
      | Dsm.Prog.Cstf (r, b, off) ->
        Dsm.store_float ctx (base b + off) regs.(r)
      | Dsm.Prog.Fms (a, b) -> regs.(a) <- regs.(a) -. (s *. regs.(b))
      | Dsm.Prog.Add (a, b, c) -> regs.(a) <- regs.(b) +. regs.(c)
      | Dsm.Prog.Sub (a, b, c) -> regs.(a) <- regs.(b) -. regs.(c)
      | Dsm.Prog.Mul (a, b, c) -> regs.(a) <- regs.(b) *. regs.(c)
      | Dsm.Prog.Mulk (a, b, k) -> regs.(a) <- regs.(b) *. qc_consts.(k)
      | Dsm.Prog.Movk (a, k) -> regs.(a) <- qc_consts.(k)
      | Dsm.Prog.Auxld (a, i) -> regs.(a) <- aux.(i)
      | Dsm.Prog.Auxst (a, i) -> aux.(i) <- regs.(a)
      | Dsm.Prog.Wrap (a, k) ->
        let q = regs.(a) and box = qc_consts.(k) in
        regs.(a) <-
          (if q < 0.0 then q +. box else if q >= box then q -. box else q)
      | Dsm.Prog.Charge n -> Dsm.compute ctx n)
    instrs

let gen_instr ~raw =
  let open QCheck.Gen in
  let reg = int_bound (qc_nregs - 1) in
  let b = int_bound 2 in
  let off = map (fun k -> 8 * k) (int_bound (qc_slots - 1)) in
  let k = int_bound (Array.length qc_consts - 1) in
  let arith =
    [
      map2 (fun a b -> Dsm.Prog.Fms (a, b)) reg reg;
      map3 (fun a b c -> Dsm.Prog.Add (a, b, c)) reg reg reg;
      map3 (fun a b c -> Dsm.Prog.Sub (a, b, c)) reg reg reg;
      map3 (fun a b c -> Dsm.Prog.Mul (a, b, c)) reg reg reg;
      map3 (fun a b c -> Dsm.Prog.Mulk (a, b, c)) reg reg k;
      map2 (fun a b -> Dsm.Prog.Movk (a, b)) reg k;
      map2 (fun a i -> Dsm.Prog.Auxld (a, i)) reg (int_bound (qc_naux - 1));
      map2 (fun a i -> Dsm.Prog.Auxst (a, i)) reg (int_bound (qc_naux - 1));
      map2 (fun a k -> Dsm.Prog.Wrap (a, k)) reg (return 1);
      map (fun n -> Dsm.Prog.Charge n) (int_bound 12);
    ]
  in
  let mem =
    if raw then
      [
        map3 (fun r b off -> Dsm.Prog.Ldf (r, b, off)) reg b off;
        map3 (fun r b off -> Dsm.Prog.Stf (r, b, off)) reg b off;
      ]
    else
      [
        map3 (fun r b off -> Dsm.Prog.Cldf (r, b, off)) reg b off;
        map3 (fun r b off -> Dsm.Prog.Cstf (r, b, off)) reg b off;
      ]
  in
  oneof (mem @ mem @ arith)

let gen_case =
  let open QCheck.Gen in
  bool >>= fun raw ->
  list_size (int_range 1 40) (gen_instr ~raw) >>= fun instrs ->
  return (raw, instrs)

let arb_case =
  QCheck.make gen_case ~print:(fun (raw, instrs) ->
      Printf.sprintf "raw=%b %d instrs" raw (List.length instrs))

let qc_outcome ~fastpath ~record ~use_prog (raw, instrs) =
  let s = 3.0 in
  let bases = ref [||] in
  execute ~fastpath ~record
    ~init:(fun h ->
      let arrays =
        Array.init 3 (fun _ -> Dsm.alloc_floats h ~block_size:64 qc_slots)
      in
      bases := arrays;
      Array.iteri
        (fun ai a ->
          for i = 0 to qc_slots - 1 do
            Dsm.poke_float h (a + (8 * i))
              (1.0 +. (0.25 *. float_of_int ((ai * qc_slots) + i)))
          done)
        arrays;
      Array.concat
        (Array.to_list
           (Array.map
              (fun a -> Array.init qc_slots (fun i -> a + (8 * i)))
              arrays)))
    ~body:(fun ctx ->
      if Dsm.pid ctx = 0 then begin
        let b = !bases in
        let aux = Array.make qc_naux 0.0 in
        let go () =
          if use_prog then
            let prog =
              Dsm.Prog.compile ~consts:qc_consts ~nregs:qc_nregs instrs
            in
            Dsm.Prog.run ctx prog ~s ~aux ~base0:b.(0) ~base1:b.(1)
              ~base2:b.(2)
          else
            oracle ctx instrs ~s ~aux ~base0:b.(0) ~base1:b.(1) ~base2:b.(2)
        in
        if raw then
          Dsm.batch ctx
            [
              (b.(0), qc_slots * 8, Dsm.W);
              (b.(1), qc_slots * 8, Dsm.W);
              (b.(2), qc_slots * 8, Dsm.W);
            ]
            go
        else go ()
      end)

let prop_case case =
  List.for_all
    (fun (fastpath, record) ->
      let p = qc_outcome ~fastpath ~record ~use_prog:true case in
      let c = qc_outcome ~fastpath ~record ~use_prog:false case in
      p.values = c.values && p.cycles = c.cycles
      && norm p.stats = norm c.stats
      && p.events = c.events)
    [ (true, true); (true, false); (false, true); (false, false) ]

let qcheck_prog_parity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"random prog = closure oracle" arb_case
       prop_case)

let () =
  Alcotest.run "fastpath"
    [
      ( "kernel parity",
        [
          Alcotest.test_case "lu fms_row" `Quick test_fms;
          Alcotest.test_case "water integrate" `Quick test_water;
          Alcotest.test_case "barnes integrate" `Quick test_barnes;
          Alcotest.test_case "ocean row + rhs" `Quick test_ocean;
          Alcotest.test_case "fmm vec transfer" `Quick test_vec;
        ] );
      ("property", [ qcheck_prog_parity ]);
    ]
