(* Downgrade bookkeeping (§3.4.3): queued-request FIFO order, the
   one-downgrade-per-block precondition, and an end-to-end regression
   that messages queued while a downgrade is pending are replayed in
   arrival order. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Observer = Shasta_core.Observer
module Downgrade = Shasta_core.Downgrade
module Msg = Shasta_core.Msg

let entry_of t ~block =
  match Downgrade.find t ~block with
  | Some e -> e
  | None -> Alcotest.fail "expected a downgrade entry"

let test_take_queued_fifo () =
  let t = Downgrade.create () in
  let _e =
    Downgrade.add t ~block:0x40 ~target:Shasta_mem.State_table.Shared
      ~deferred:(Downgrade.Reply_read { requester = 2 })
      ~remaining:2
  in
  let e = entry_of t ~block:0x40 in
  Downgrade.push_queued e ~src:3 (Msg.Req { kind = Msg.Read; block = 0x40 });
  Downgrade.push_queued e ~src:1 (Msg.Req { kind = Msg.Readex; block = 0x40 });
  Downgrade.push_queued e ~src:5 (Msg.Invalidate { block = 0x40; requester = 1 });
  let order = List.map fst (Downgrade.take_queued e) in
  Alcotest.(check (list int)) "arrival order" [ 3; 1; 5 ] order;
  Alcotest.(check (list int)) "queue cleared" []
    (List.map fst (Downgrade.take_queued e))

let test_add_twice_rejected () =
  let t = Downgrade.create () in
  let _ =
    Downgrade.add t ~block:0x80 ~target:Shasta_mem.State_table.Invalid
      ~deferred:(Downgrade.Inval_done { requester = 0 })
      ~remaining:1
  in
  let raised =
    try
      ignore
        (Downgrade.add t ~block:0x80 ~target:Shasta_mem.State_table.Shared
           ~deferred:(Downgrade.Reply_read { requester = 2 })
           ~remaining:1);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "second add rejected" true raised;
  (* A different block is still accepted. *)
  ignore
    (Downgrade.add t ~block:0xc0 ~target:Shasta_mem.State_table.Shared
       ~deferred:(Downgrade.Reply_read { requester = 2 })
       ~remaining:1);
  Alcotest.(check int) "two entries" 2 (Downgrade.count t)

(* Regression: messages queued on a pending downgrade must be replayed
   in arrival order after the deferred action runs (§3.4.3).

   The home's busy bit serializes transactions so strictly that live
   traffic lands in the DIRECTORY queue rather than on the downgrade
   entry; the entry's queue guards against request/downgrade overlap the
   simulator's atomic handlers cannot produce on their own. To exercise
   the replay machinery end-to-end with real in-flight messages, an
   observer transfers the directory-queued read requests — issued by
   genuinely missing remote processors — onto the live downgrade entry
   at ack time. Their replay then flows through the full protocol:
   each request is re-dispatched after the downgrade completes and is
   answered with a data reply the requester is actually waiting for. *)
let test_replay_in_arrival_order () =
  let cfg =
    Config.create ~variant:Config.Smp ~nprocs:8 ~procs_per_node:2 ~clustering:2
      ~heap_bytes:(64 * 1024) ()
  in
  let h = Dsm.create cfg in
  let m = Dsm.machine h in
  let x = Dsm.alloc h ~home:0 8 in
  let block = Shasta_core.Machine.block_base m x in
  let b0 = Dsm.alloc_barrier h and b1 = Dsm.alloc_barrier h in
  let got = Array.make 8 (-1) in
  let queued = ref [] and replayed = ref [] in
  let transfer b =
    if b = block then
      match
        ( Shasta_core.Directory.find m.Shasta_core.Machine.dirs.(0) ~block,
          Downgrade.find
            m.Shasta_core.Machine.nodes.(0).Shasta_core.Machine.downgrades
            ~block )
      with
      | Some de, Some dg ->
        let rec drain () =
          match Shasta_core.Directory.pop_queued de with
          | Some (src, msg) ->
            Downgrade.push_queued dg ~src msg;
            queued := (src, Msg.describe msg) :: !queued;
            drain ()
          | None -> ()
        in
        drain ()
      | _ -> ()
  in
  Dsm.add_observer h
    {
      Observer.nil with
      Observer.on_downgrade_ack = (fun ~proc:_ ~block ~now:_ -> transfer block);
      Observer.on_downgrade_replay = (fun ~proc:_ ~block:_ ~src ~now:_ msg ->
        replayed := (src, Msg.describe msg) :: !replayed);
    };
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      (* Both processors of the home node write, so the first remote
         read forces an exclusive-to-shared downgrade with a sibling
         target; reads from the two other nodes (sibling misses would
         coalesce, so one reader per node) arrive during the window and
         queue at the busy directory. *)
      if p < 2 then Dsm.store_int ctx x 7;
      Dsm.barrier ctx b0;
      if p >= 2 && p mod 2 = 0 then got.(p) <- Dsm.load_int ctx x;
      Dsm.barrier ctx b1;
      got.(p) <- Dsm.load_int ctx x);
  Alcotest.(check bool) "queued at least one request" true (!queued <> []);
  Alcotest.(check (list (pair int string)))
    "replayed in arrival order" (List.rev !queued) (List.rev !replayed);
  Array.iteri
    (fun p v -> Alcotest.(check int) (Printf.sprintf "proc %d value" p) 7 v)
    got

let () =
  Alcotest.run "downgrade"
    [
      ( "queue",
        [
          Alcotest.test_case "take_queued FIFO" `Quick test_take_queued_fifo;
          Alcotest.test_case "add twice rejected" `Quick test_add_twice_rejected;
        ] );
      ( "replay",
        [
          Alcotest.test_case "arrival order end-to-end" `Quick
            test_replay_in_arrival_order;
        ] );
    ]
