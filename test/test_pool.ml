(* Unit tests for the domain pool behind the multicore experiment
   runner: ordering, exception propagation at the join point, the
   in-place jobs=1 degradation, and oversubscription. *)

module Pool = Shasta_util.Pool

exception Boom of int

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  let ys = Pool.map_list ~jobs:4 (fun i -> i * i) xs in
  Alcotest.(check (list int)) "results in submission order"
    (List.map (fun i -> i * i) xs)
    ys

let test_exception_at_join () =
  Alcotest.check_raises "worker exception re-raised by await" (Boom 5)
    (fun () ->
      ignore
        (Pool.map_list ~jobs:3
           (fun i -> if i = 5 then raise (Boom i) else i)
           (List.init 10 Fun.id)));
  (* Same contract in the in-place mode: submit captures, await raises. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let fut = Pool.submit pool (fun () -> raise (Boom 1)) in
      let ok = Pool.submit pool (fun () -> 42) in
      Alcotest.(check int) "later job unaffected" 42 (Pool.await ok);
      Alcotest.check_raises "in-place exception re-raised by await" (Boom 1)
        (fun () -> ignore (Pool.await fut)))

let test_jobs1_in_place () =
  let main = Domain.self () in
  let domains =
    Pool.map_list ~jobs:1 (fun _ -> Domain.self ()) (List.init 8 Fun.id)
  in
  List.iter
    (fun d ->
      Alcotest.(check bool) "jobs=1 runs on the submitting domain" true
        (d = main))
    domains

let test_workers_are_domains () =
  let main = Domain.self () in
  let domains =
    Pool.map_list ~jobs:2 (fun _ -> Domain.self ()) (List.init 8 Fun.id)
  in
  List.iter
    (fun d ->
      Alcotest.(check bool) "jobs>1 runs on worker domains" true (d <> main))
    domains

let test_stress_oversubscribed () =
  (* Many more tasks than workers, with skewed task sizes, so the queue
     stays hot and completion order diverges from submission order. *)
  let n = 500 in
  let work i =
    let iters = 1 + ((i * 37) mod 400) in
    let acc = ref i in
    for k = 1 to iters do
      acc := (!acc * 31) + k
    done;
    (i, !acc)
  in
  let expected = List.init n work in
  let got = Pool.map_list ~jobs:3 work (List.init n Fun.id) in
  Alcotest.(check (list (pair int int))) "all results, in order" expected got

let test_submit_after_shutdown () =
  let pool = Pool.create ~jobs:2 in
  Alcotest.(check int) "jobs recorded" 2 (Pool.jobs pool);
  let fut = Pool.submit pool (fun () -> 7) in
  Pool.shutdown pool;
  Alcotest.(check int) "queued job finished by shutdown" 7 (Pool.await fut);
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown rejected"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> 0)))

let test_default_jobs_env () =
  (* Can't portably set the environment of this process, but the default
     must at least be a positive count. *)
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "exception at join" `Quick test_exception_at_join;
          Alcotest.test_case "jobs=1 in place" `Quick test_jobs1_in_place;
          Alcotest.test_case "workers are domains" `Quick
            test_workers_are_domains;
          Alcotest.test_case "stress oversubscribed" `Quick
            test_stress_oversubscribed;
          Alcotest.test_case "shutdown semantics" `Quick
            test_submit_after_shutdown;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_env;
        ] );
    ]
