(* Determinism golden test for the scheduler.

   Runs the Exp_speedup workload set at a reduced scale and summarizes,
   per app and configuration, the per-processor final cycle counts and
   the machine-wide message/miss counters. The summary is compared

   - against itself across two fresh runs (in-process determinism),
   - against a checked-in snapshot captured with the always-yield
     scheduler (`~run_ahead:false`), pinning virtual-time behavior
     across PRs, and
   - between the run-ahead scheduler and the always-yield scheduler,
     which must agree event-for-event.

   Any scheduler change that perturbs virtual time shows up as a diff in
   these lines. Regenerate the snapshot (only when a perturbation is
   intended and understood) with:

     SHASTA_GOLDEN_WRITE=$PWD/test/golden_speedup.expected \
       dune exec test/test_golden.exe *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Stats = Shasta_core.Stats
module Machine = Shasta_core.Machine
module App = Shasta_apps.App
module Registry = Shasta_apps.Registry

let scale = 0.25
let snapshot_file = "golden_speedup.expected"

let configs = [ (Config.Base, 4, 1); (Config.Smp, 8, 4) ]

let variant_name = function Config.Base -> "base" | Config.Smp -> "smp"

let run_one ?run_ahead ?shards app ~variant ~nprocs ~clustering =
  let maker = Registry.find app in
  let inst = maker ~scale () in
  let heap = max (1 lsl 22) inst.App.heap_bytes in
  let heap = (heap + 4095) / 4096 * 4096 in
  let cfg = Config.create ~variant ~nprocs ~clustering ~heap_bytes:heap () in
  let h = Dsm.create cfg in
  let body, verify = inst.App.setup h in
  Dsm.run ?run_ahead ?shards h body;
  let v = verify h in
  if not v.App.ok then
    Alcotest.failf "%s failed verification: %s" app v.App.detail;
  let m = Dsm.machine h in
  let ints f =
    String.concat ","
      (Array.to_list (Array.map (fun p -> string_of_int (f p)) m.Machine.procs))
  in
  let agg = Dsm.aggregate_stats h in
  Printf.sprintf
    "%s %s %dp/%d finish=%s cycles=%s local=%d remote=%d misses=%d checks=%d"
    app (variant_name variant) nprocs clustering
    (ints (fun p -> p.Machine.app_finish_cycles))
    (ints (fun p -> Stats.total_cycles p.Machine.stats))
    (Dsm.messages_local h) (Dsm.messages_remote h) (Stats.total_misses agg)
    agg.Stats.checks

let summary ?run_ahead () =
  List.concat_map
    (fun app ->
      List.map
        (fun (variant, nprocs, clustering) ->
          run_one ?run_ahead app ~variant ~nprocs ~clustering)
        configs)
    Registry.names

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let check_lines msg expected actual =
  Alcotest.(check (list string)) msg expected actual

let test_repeat_identical () =
  check_lines "two fresh runs agree" (summary ()) (summary ())

let test_matches_snapshot () =
  if not (Sys.file_exists snapshot_file) then
    Alcotest.failf "missing snapshot %s" snapshot_file;
  check_lines "matches checked-in snapshot" (read_lines snapshot_file)
    (summary ())

let test_run_ahead_equivalent () =
  check_lines "run-ahead and always-yield schedulers agree"
    (summary ~run_ahead:false ())
    (summary ~run_ahead:true ())

let test_sharded_equivalent () =
  (* The conservative-PDES scheduler must reproduce the sequential
     summary line exactly — finish clocks, per-proc cycles and all
     machine counters. One app here (the full matrix sharded is costly
     on a single-core host); CI additionally diffs the whole fig3
     experiment at --shards 1 vs 2. *)
  check_lines "sharded scheduler agrees with sequential"
    [ run_one "lu" ~variant:Config.Base ~nprocs:4 ~clustering:1 ]
    [ run_one ~shards:2 "lu" ~variant:Config.Base ~nprocs:4 ~clustering:1 ]

let () =
  match Sys.getenv_opt "SHASTA_GOLDEN_WRITE" with
  | Some path ->
    let oc = open_out path in
    List.iter
      (fun l -> output_string oc (l ^ "\n"))
      (summary ~run_ahead:false ());
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None ->
    Alcotest.run "golden"
      [
        ( "determinism",
          [
            Alcotest.test_case "repeat identical" `Quick test_repeat_identical;
            Alcotest.test_case "snapshot" `Quick test_matches_snapshot;
            Alcotest.test_case "run-ahead equivalent" `Quick
              test_run_ahead_equivalent;
            Alcotest.test_case "sharded equivalent" `Quick
              test_sharded_equivalent;
          ] );
      ]
