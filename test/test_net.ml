(* Tests for the interconnect model. *)

module Topology = Shasta_net.Topology
module Link = Shasta_net.Link
module Network = Shasta_net.Network

let test_topology () =
  let t = Topology.create ~nprocs:16 ~procs_per_node:4 in
  Alcotest.(check int) "nodes" 4 (Topology.nnodes t);
  Alcotest.(check int) "node of 5" 1 (Topology.node_of t 5);
  Alcotest.(check bool) "same node" true (Topology.same_node t 4 7);
  Alcotest.(check bool) "different nodes" false (Topology.same_node t 3 4);
  Alcotest.(check (list int)) "procs of node 2" [ 8; 9; 10; 11 ]
    (Topology.procs_of_node t 2)

let test_topology_partial () =
  let t = Topology.create ~nprocs:6 ~procs_per_node:4 in
  Alcotest.(check int) "two nodes" 2 (Topology.nnodes t);
  Alcotest.(check (list int)) "partial node" [ 4; 5 ] (Topology.procs_of_node t 1)

let test_link_costs () =
  let l = Link.default in
  let local = Link.transfer_cycles l ~same_node:true ~size:64 in
  let remote = Link.transfer_cycles l ~same_node:false ~size:64 in
  Alcotest.(check bool) "remote slower" true (remote > local);
  let small = Link.transfer_cycles l ~same_node:false ~size:16 in
  Alcotest.(check bool) "size matters" true (remote > small)

let test_network_delivery () =
  let topo = Topology.create ~nprocs:4 ~procs_per_node:2 in
  let net = Network.create topo Link.default in
  Network.send net ~src:0 ~dst:1 ~now:0 ~size:16 "hello";
  Alcotest.(check (option (pair int string))) "not arrived yet" None
    (Network.poll net ~dst:1 ~now:0);
  (match Network.peek_arrival net ~dst:1 with
  | Some t ->
    Alcotest.(check (option (pair int string)))
      "arrives at its timestamp" (Some (0, "hello"))
      (Network.poll net ~dst:1 ~now:t)
  | None -> Alcotest.fail "message lost");
  Alcotest.(check int) "queue drained" 0 (Network.queued net ~dst:1)

let test_network_fifo_per_pair () =
  (* A small message sent after a large one must not overtake it. *)
  let topo = Topology.create ~nprocs:2 ~procs_per_node:1 in
  let net = Network.create topo Link.default in
  Network.send net ~src:0 ~dst:1 ~now:0 ~size:8192 "big";
  Network.send net ~src:0 ~dst:1 ~now:1 ~size:0 "small";
  let got = ref [] in
  let rec drain now =
    match Network.poll net ~dst:1 ~now with
    | Some (_, m) ->
      got := m :: !got;
      drain now
    | None -> if Network.queued net ~dst:1 > 0 then drain (now + 100)
  in
  drain 0;
  Alcotest.(check (list string)) "FIFO per pair" [ "big"; "small" ] (List.rev !got)

let test_network_counters () =
  let topo = Topology.create ~nprocs:4 ~procs_per_node:2 in
  let net = Network.create topo Link.default in
  Network.send net ~src:0 ~dst:1 ~now:0 ~size:10 "local";
  Network.send net ~src:0 ~dst:2 ~now:0 ~size:20 "remote";
  Network.send net ~src:3 ~dst:2 ~now:0 ~size:30 "local2";
  Alcotest.(check int) "local count" 2 (Network.sent_local net);
  Alcotest.(check int) "remote count" 1 (Network.sent_remote net);
  Alcotest.(check int) "remote bytes" 20 (Network.bytes_remote net)

(* Direct unit tests of the delivery heap: pop order is (arrival, sent,
   src, seq) lexicographic, so equal-arrival messages drain by send
   time, then sender id, then per-sender sequence — a function of
   virtual time and sender identity only, never of host-time send
   order. *)
let msg ?(sent = 0) ?(src = 0) ?(seq = 0) arrival payload =
  { Network.arrival; sent; src; seq; payload }

let heap_drain h =
  let rec go acc =
    match Network.Heap.pop h with
    | Some m -> go (m.Network.payload :: acc)
    | None -> List.rev acc
  in
  go []

let test_heap_pop_ordering () =
  let h = Network.Heap.create () in
  Alcotest.(check int) "empty min_arrival" max_int (Network.Heap.min_arrival h);
  List.iter
    (Network.Heap.push h)
    [ msg 30 "c"; msg 10 "a"; msg 40 "d"; msg 20 "b"; msg 50 "e" ];
  Alcotest.(check int) "size" 5 (Network.Heap.size h);
  Alcotest.(check int) "min_arrival" 10 (Network.Heap.min_arrival h);
  (match Network.Heap.peek h with
  | Some m -> Alcotest.(check string) "peek is min" "a" m.Network.payload
  | None -> Alcotest.fail "peek on non-empty heap");
  Alcotest.(check (list string))
    "pops in arrival order"
    [ "a"; "b"; "c"; "d"; "e" ]
    (heap_drain h);
  Alcotest.(check int) "drained" 0 (Network.Heap.size h)

let test_heap_tie_breaks () =
  let h = Network.Heap.create () in
  (* All arrive at 100; pushed in a deliberately scrambled order. *)
  List.iter
    (Network.Heap.push h)
    [
      msg ~sent:5 ~src:1 ~seq:9 100 "sent5.src1";
      msg ~sent:3 ~src:2 ~seq:8 100 "sent3.src2.seq8";
      msg ~sent:5 ~src:0 ~seq:7 100 "sent5.src0";
      msg ~sent:3 ~src:2 ~seq:2 100 "sent3.src2.seq2";
      msg ~sent:3 ~src:0 ~seq:6 100 "sent3.src0";
    ];
  Alcotest.(check (list string))
    "equal arrival drains by (sent, src, seq)"
    [
      "sent3.src0"; "sent3.src2.seq2"; "sent3.src2.seq8"; "sent5.src0";
      "sent5.src1";
    ]
    (heap_drain h)

let test_fifo_arrival_bump () =
  (* When a later send on the same (src,dst) pair computes an arrival at
     or before its predecessor's, it is bumped to predecessor + 1 —
     strictly FIFO without reordering the heap. *)
  let topo = Topology.create ~nprocs:2 ~procs_per_node:1 in
  let net = Network.create topo Link.default in
  let zero_cost = Link.transfer_cycles Link.default ~same_node:false ~size:0 in
  Network.send net ~src:0 ~dst:1 ~now:0 ~size:8192 "big";
  let big_arrival =
    match Network.peek_arrival net ~dst:1 with
    | Some t -> t
    | None -> Alcotest.fail "big lost"
  in
  Network.send net ~src:0 ~dst:1 ~now:1 ~size:0 "small";
  (* The small message alone would arrive at [1 + zero_cost], well
     before the big one. *)
  Alcotest.(check bool) "bump actually triggered" true
    (1 + zero_cost < big_arrival);
  (match Network.poll net ~dst:1 ~now:big_arrival with
  | Some (_, m) -> Alcotest.(check string) "big first" "big" m
  | None -> Alcotest.fail "big not delivered at its arrival");
  Alcotest.(check (option (pair int string)))
    "small not yet due at big's arrival" None
    (Network.poll net ~dst:1 ~now:big_arrival);
  Alcotest.(check (option (pair int string)))
    "small due exactly one cycle later"
    (Some (0, "small"))
    (Network.poll net ~dst:1 ~now:(big_arrival + 1))

let test_cross_shard_fifo_bump () =
  (* The sharded detour must not weaken delivery order: a small message
     sent after a big one on the same (src,dst) pair is FIFO-bumped at
     SEND time (stamping is a pure function of virtual time), so the
     order survives the mailbox hop and the drain. Mirrors
     [test_fifo_arrival_bump] with the two procs on different shards. *)
  let topo = Topology.create ~nprocs:2 ~procs_per_node:1 in
  let net = Network.create topo Link.default in
  Network.set_sharding net ~shards:2 ~shard_of:(fun p -> p);
  let zero_cost = Link.transfer_cycles Link.default ~same_node:false ~size:0 in
  Network.send net ~src:0 ~dst:1 ~now:0 ~size:8192 "big";
  Network.send net ~src:0 ~dst:1 ~now:1 ~size:0 "small";
  Alcotest.(check int) "both sends counted as cross-shard" 2
    (Network.cross_sent net);
  (* Undrained mailboxed messages are invisible to the destination. *)
  Alcotest.(check int) "nothing in the heap before drain" 0
    (Network.queued net ~dst:1);
  Alcotest.(check int) "drain moves both" 2 (Network.drain_shard net ~shard:1);
  Alcotest.(check int) "drain is idempotent when empty" 0
    (Network.drain_shard net ~shard:1);
  let big_arrival =
    match Network.peek_arrival net ~dst:1 with
    | Some t -> t
    | None -> Alcotest.fail "big lost"
  in
  Alcotest.(check bool) "bump actually triggered" true
    (1 + zero_cost < big_arrival);
  (match Network.poll net ~dst:1 ~now:big_arrival with
  | Some (_, m) -> Alcotest.(check string) "big first" "big" m
  | None -> Alcotest.fail "big not delivered at its arrival");
  Alcotest.(check (option (pair int string)))
    "small not yet due at big's arrival" None
    (Network.poll net ~dst:1 ~now:big_arrival);
  Alcotest.(check (option (pair int string)))
    "small due exactly one cycle later"
    (Some (0, "small"))
    (Network.poll net ~dst:1 ~now:(big_arrival + 1))

let test_cross_shard_same_shard_direct () =
  (* With sharding enabled, an intra-shard send bypasses the mailboxes
     entirely — visible immediately, no drain needed. *)
  let topo = Topology.create ~nprocs:4 ~procs_per_node:2 in
  let net = Network.create topo Link.default in
  Network.set_sharding net ~shards:2 ~shard_of:(fun p -> p / 2);
  Network.send net ~src:0 ~dst:1 ~now:0 ~size:16 "direct";
  Alcotest.(check int) "not a cross-shard send" 0 (Network.cross_sent net);
  Alcotest.(check int) "already in the heap" 1 (Network.queued net ~dst:1)

let prop_arrival_order =
  QCheck.Test.make ~name:"poll yields messages in arrival order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_bound 3) (int_bound 500)))
    (fun sends ->
      let topo = Topology.create ~nprocs:4 ~procs_per_node:2 in
      let net = Network.create topo Link.default in
      List.iter
        (fun (src, now) -> Network.send net ~src ~dst:3 ~now ~size:8 now)
        sends;
      let rec drain acc now =
        match Network.poll net ~dst:3 ~now with
        | Some (_, _) -> (
          (* record the arrival time used *)
          match Network.peek_arrival net ~dst:3 with
          | _ -> drain (now :: acc) now)
        | None -> if Network.queued net ~dst:3 > 0 then drain acc (now + 50) else acc
      in
      let _ = drain [] 0 in
      true)

let () =
  Alcotest.run "net"
    [
      ( "topology",
        [
          Alcotest.test_case "basic" `Quick test_topology;
          Alcotest.test_case "partial node" `Quick test_topology_partial;
        ] );
      ("link", [ Alcotest.test_case "costs" `Quick test_link_costs ]);
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick test_network_delivery;
          Alcotest.test_case "fifo per pair" `Quick test_network_fifo_per_pair;
          Alcotest.test_case "counters" `Quick test_network_counters;
          QCheck_alcotest.to_alcotest prop_arrival_order;
        ] );
      ( "heap",
        [
          Alcotest.test_case "pop ordering" `Quick test_heap_pop_ordering;
          Alcotest.test_case "tie-breaks" `Quick test_heap_tie_breaks;
          Alcotest.test_case "fifo arrival bump" `Quick test_fifo_arrival_bump;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "cross-shard fifo bump" `Quick
            test_cross_shard_fifo_bump;
          Alcotest.test_case "intra-shard stays direct" `Quick
            test_cross_shard_same_shard_direct;
        ] );
    ]
