(* Crash-scenario test matrix: node crashes as first-class events,
   recovery proven clean (or failing with the typed
   [Recovery_violation]) under the full sanitizer battery — the online
   invariant sanitizer plus the happens-before race detector, i.e. the
   SHASTA_SANITIZE=2 configuration.

   Four targeted situations from the issue matrix:
   - a crash landing during an in-flight intra-node downgrade,
   - a crash of a block's home node while a remote node holds the only
     (Exclusive) copy,
   - a crash of a processor holding a per-bucket KV-style lock,
   - a crash between a checkpoint and the log tail, where sharer-pull
     recovery must raise the typed [Data_loss] and checkpoint + log
     replay must recover clean.

   Plus the QCheck round-trip properties from the checkpoint spec:
   [snapshot (restore m s) = s] and log-replay idempotence (replaying
   any prefix twice equals replaying it once). *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Machine = Shasta_core.Machine
module Inspect = Shasta_core.Inspect
module Msg = Shasta_core.Msg
module Observer = Shasta_core.Observer
module Engine = Shasta_sim.Engine
module Sanitizer = Shasta_check.Sanitizer
module Races = Shasta_check.Races
module Litmus = Shasta_check.Litmus
module Checkpoint = Shasta_recover.Checkpoint
module Recover = Shasta_recover.Recover
module Crash = Shasta_recover.Crash
module Prng = Shasta_util.Prng
module Bitset = Shasta_util.Bitset

let default_choose (cands : int array) = cands.(0)

let random_choose seed =
  let prng = Prng.create (0x5eed + (seed * 2654435761)) in
  fun (cands : int array) -> cands.(Prng.int prng (Array.length cands))

(* The litmus geometry with the full checker battery requested in the
   config (the checkers themselves are attached per run below, exactly
   as the experiment runner does for SHASTA_SANITIZE=2). *)
let make_cfg () =
  Config.create ~variant:Smp ~nprocs:4 ~procs_per_node:2 ~clustering:2
    ~heap_bytes:(64 * 1024) ~max_cycles:2_000_000 ~sanitize:2 ()

let find_scenario name =
  List.find (fun s -> s.Litmus.name = name) Litmus.scenarios

(* Outcome of one crash run: [Clean] recovered with every checker
   silent, [Typed] failed with the typed recovery exception, [Bad]
   anything else (always a test failure). *)
type outcome = Clean | Typed of string | Bad of string

let is_data_loss what =
  String.length what >= 27
  && String.sub what 0 27 = "Recovery_violation (Data_lo"

(* Run [body] on [h] under the default schedule with a crash of [node]
   scheduled at cycle [at]; [ckpt_interval > 0] selects checkpoint +
   log-replay recovery. [check ~live] is the crash-aware outcome
   predicate. The sanitizer and the race detector are attached to every
   run and any noise from them is a failure. *)
let crash_run ?(choose = default_choose) ?(ckpt_interval = 0) ~node ~at h body
    check =
  let m = Dsm.machine h in
  let san = Sanitizer.attach m in
  let rd = Races.attach m in
  let events =
    if ckpt_interval > 0 then
      let ckpt = Checkpoint.attach m ~interval:ckpt_interval in
      [ Crash.with_checkpoint h ~node ~at ~ckpt ]
    else [ Crash.kill h ~node ~at ]
  in
  try
    Dsm.run_controlled ~choose ~events h body;
    if Sanitizer.violation_count san > 0 then
      Bad
        ("sanitizer: "
        ^ String.concat "; "
            (List.map Inspect.describe (Sanitizer.violations san)))
    else if Races.race_count rd > 0 then
      Bad ("race: " ^ Races.describe (List.hd (Races.races rd)))
    else
      match Inspect.report m with
      | v :: _ -> Bad ("post-run invariants: " ^ Inspect.describe v)
      | [] -> (
        if m.Machine.crashes = 0 then Bad "crash event never fired"
        else
          match check ~live:(fun p -> not m.Machine.dead.(p)) with
          | Some what -> Bad ("outcome: " ^ what)
          | None -> Clean)
  with
  | Recover.Recovery_violation _ as e -> Typed (Printexc.to_string e)
  | Engine.Cycle_limit p ->
    Bad (Printf.sprintf "livelock: processor %d hit the cycle limit" p)

(* ------------------------------------------------------------------ *)
(* 1. Crash during an in-flight intra-node downgrade: harvest the
   downgrade-send clocks of the lock-counter default schedule (the one
   built-in scenario that drives intra-node downgrade messages without
   schedule deviations) and kill the downgrading node one cycle after
   each send, in both recovery modes. *)

let test_crash_inflight_downgrade () =
  let sc = find_scenario "lock-counter" in
  let inst = sc.Litmus.make ~fault:None in
  let m = Dsm.machine inst.Litmus.handle in
  let placements = ref [] in
  Machine.add_observer m
    {
      Observer.nil with
      Observer.on_send =
        (fun ~src:_ ~dst ~now msg ->
          match msg with
          | Msg.Downgrade _ ->
            placements := (Machine.node_of m dst, now) :: !placements
          | _ -> ());
    };
  Dsm.run_controlled ~choose:default_choose inst.Litmus.handle
    inst.Litmus.body;
  let placements = List.sort_uniq compare !placements in
  Alcotest.(check bool)
    "default schedule drives at least one intra-node downgrade" true
    (placements <> []);
  List.iter
    (fun (node, c) ->
      List.iter
        (fun ckpt_interval ->
          let inst = sc.Litmus.make ~fault:None in
          match
            crash_run ~ckpt_interval ~node ~at:(c + 1) inst.Litmus.handle
              inst.Litmus.body inst.Litmus.crash_final
          with
          | Clean -> ()
          | Typed what when ckpt_interval = 0 && is_data_loss what -> ()
          | Typed what | Bad what ->
            Alcotest.failf
              "crash node %d at %d (mid-downgrade, ckpt %d): %s" node (c + 1)
              ckpt_interval what)
        [ 0; 512 ])
    placements

(* ------------------------------------------------------------------ *)
(* 2. Crash of the home node while a remote node holds the only
   Exclusive copy: the block must be re-homed to a survivor with its
   bytes preserved exactly (no rollback — a live copy exists). *)

let home_crash_instance () =
  let h = Dsm.create (make_cfg ()) in
  let x = Dsm.alloc h ~home:2 8 in
  let b0 = Dsm.alloc_barrier h in
  let got = Array.make 4 (-1) in
  let body ctx =
    let p = Dsm.pid ctx in
    if p = 0 then Dsm.store_int ctx x 7;
    Dsm.barrier ctx b0;
    got.(p) <- Dsm.load_int ctx x
  in
  (h, x, body, got)

let test_crash_home_with_remote_exclusive () =
  (* dry default run harvesting — in the engine's event timeline — the
     cycle at which node 0's copy turns Exclusive (a processor clock
     read after the store would still be mid-miss at the event clock) *)
  let h, x, body, _ = home_crash_instance () in
  let m = Dsm.machine h in
  let t_excl = ref (-1) in
  Machine.add_observer m
    {
      Observer.nil with
      Observer.on_state =
        (fun ~by:_ ~node ~block ~from_:_ ~to_ ~now ->
          if node = 0 && block = x && to_ = Shasta_mem.State_table.Exclusive
          then t_excl := now);
    };
  Dsm.run_controlled ~choose:default_choose h body;
  let at = !t_excl + 1 in
  Alcotest.(check bool) "exclusive-transition clock harvested" true (at > 0);
  List.iter
    (fun ckpt_interval ->
      let h, x, body, got = home_crash_instance () in
      let m = Dsm.machine h in
      let check ~live:_ =
        (* node 0's Exclusive copy survived: both live processors must
           read the stored value, never a rollback *)
        if got.(0) = 7 && got.(1) = 7 then None
        else
          Some (Printf.sprintf "live reads got p0=%d p1=%d" got.(0) got.(1))
      in
      (match crash_run ~ckpt_interval ~node:1 ~at h body check with
      | Clean -> ()
      | Typed what | Bad what ->
        Alcotest.failf "home crash (ckpt %d): %s" ckpt_interval what);
      Alcotest.(check bool)
        "block re-homed to a live processor" true
        (not m.Machine.dead.(Machine.home_of_block m x));
      Alcotest.(check int) "exactly one crash" 1 m.Machine.crashes;
      Alcotest.(check bool)
        "recovery charged machine-wide cycles" true
        (m.Machine.recovery_cycles >= 0))
    [ 0; 512 ]

(* ------------------------------------------------------------------ *)
(* 3. Crash while holding a per-bucket KV-style lock: processor 3 dies
   inside its critical section; the lock must pass to a live waiter
   (no livelock) and the bucket stays coherent for the survivors. *)

let kv_lock_instance () =
  let h = Dsm.create (make_cfg ()) in
  let x = Dsm.alloc h ~home:0 8 in
  let l = Dsm.alloc_lock h in
  let b0 = Dsm.alloc_barrier h in
  let got = Array.make 4 (-1) in
  let t_hold = ref (-1) in
  let body ctx =
    let p = Dsm.pid ctx in
    Dsm.lock ctx l;
    Dsm.store_int ctx x (Dsm.load_int ctx x + 1);
    if p = 3 then begin
      t_hold := Dsm.now ctx;
      (* keep the critical section open so a crash clock harvested here
         lands while the lock is held *)
      Dsm.compute ctx 500
    end;
    Dsm.unlock ctx l;
    Dsm.barrier ctx b0;
    got.(p) <- Dsm.load_int ctx x
  in
  (h, l, body, got, t_hold)

let test_crash_holding_kv_lock () =
  let h, _, body, _, t_hold = kv_lock_instance () in
  Dsm.run_controlled ~choose:default_choose h body;
  let at = !t_hold + 1 in
  Alcotest.(check bool) "holder clock harvested" true (at > 0);
  List.iter
    (fun ckpt_interval ->
      let h, l, body, got, _ = kv_lock_instance () in
      let m = Dsm.machine h in
      let check ~live:_ =
        (* both survivors read the bucket after the barrier with no
           writes in between: they must agree, and the count can never
           exceed the four increments *)
        if got.(0) <> got.(1) then
          Some (Printf.sprintf "survivors disagree: %d vs %d" got.(0) got.(1))
        else if got.(0) < 0 || got.(0) > 4 then
          Some (Printf.sprintf "impossible counter %d" got.(0))
        else None
      in
      (match crash_run ~ckpt_interval ~node:1 ~at h body check with
      | Clean -> ()
      | Typed what when ckpt_interval = 0 && is_data_loss what -> ()
      | Typed what | Bad what ->
        Alcotest.failf "lock-holder crash (ckpt %d): %s" ckpt_interval what);
      (* the dead holder must not still own the lock *)
      match Hashtbl.find_opt m.Machine.locks l with
      | None -> ()
      | Some ls ->
        Alcotest.(check bool)
          "lock not stuck with a dead holder" false
          (ls.Machine.held && m.Machine.dead.(ls.Machine.holder)))
    [ 0; 512 ]

(* ------------------------------------------------------------------ *)
(* 4. Crash between a checkpoint and the log tail: the only copy of a
   modified block dies with its node while a live processor has a
   demand miss outstanding for it. Sharer-pull recovery must refuse to
   fabricate bytes — the typed [Data_loss] — while checkpoint +
   log-replay recovery must come back clean, restoring the block from
   the snapshot/log. The crash clock is swept across the miss window so
   at least one pull placement provably hits the loss. *)

let data_loss_instance () =
  let h = Dsm.create (make_cfg ()) in
  let x = Dsm.alloc h ~home:2 8 in
  let b0 = Dsm.alloc_barrier h in
  let got0 = ref (-1) in
  let t_req = ref (-1) in
  let body ctx =
    let p = Dsm.pid ctx in
    if p = 2 then Dsm.store_int ctx x 5;
    Dsm.barrier ctx b0;
    (* keep a survivor generating scheduling points through the miss
       window so the crash event can fire mid-miss *)
    if p = 1 then Dsm.compute ctx 2_000;
    if p = 0 then got0 := Dsm.load_int ctx x
  in
  (h, x, body, got0, t_req)

let data_loss_harvest () =
  let h, x, body, _, t_req = data_loss_instance () in
  let m = Dsm.machine h in
  Machine.add_observer m
    {
      Observer.nil with
      Observer.on_send =
        (fun ~src ~dst:_ ~now msg ->
          if src = 0 && !t_req < 0 && Msg.block_of msg = Some x then
            t_req := now);
    };
  Dsm.run_controlled ~choose:default_choose h body;
  !t_req

let test_crash_checkpoint_log_tail () =
  let t_req = data_loss_harvest () in
  Alcotest.(check bool) "demand-miss request clock harvested" true
    (t_req >= 0);
  let window = List.init 6 (fun i -> t_req + 1 + (i * 10)) in
  (* pull mode: every placement recovers clean or raises the typed
     Data_loss, and at least one placement in the window hits it *)
  let losses = ref 0 in
  List.iter
    (fun at ->
      let h, _, body, got0, _ = data_loss_instance () in
      let check ~live:_ =
        if !got0 = 5 || !got0 = 0 || !got0 = -1 then None
        else Some (Printf.sprintf "p0 read fabricated value %d" !got0)
      in
      match crash_run ~node:1 ~at h body check with
      | Clean -> ()
      | Typed what when is_data_loss what -> incr losses
      | Typed what | Bad what ->
        Alcotest.failf "pull crash at %d: %s" at what)
    window;
  Alcotest.(check bool)
    "some pull placement hits the typed Data_loss" true (!losses > 0);
  (* ckpt mode: the same placements must all recover clean — the block
     comes back from the checkpoint plus the log tail *)
  List.iter
    (fun at ->
      let h, _, body, got0, _ = data_loss_instance () in
      let m = Dsm.machine h in
      let ckpt = Checkpoint.attach m ~interval:256 in
      let san = Sanitizer.attach m in
      let check () =
        if !got0 = 5 || !got0 = 0 then None
        else Some (Printf.sprintf "p0 read fabricated value %d" !got0)
      in
      (try
         Dsm.run_controlled ~choose:default_choose
           ~events:[ Crash.with_checkpoint h ~node:1 ~at ~ckpt ]
           h body
       with Recover.Recovery_violation _ as e ->
         Alcotest.failf "ckpt crash at %d lost data: %s" at
           (Printexc.to_string e));
      Alcotest.(check int)
        (Printf.sprintf "ckpt crash at %d: sanitizer clean" at)
        0
        (Sanitizer.violation_count san);
      (match Inspect.report m with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "ckpt crash at %d: post-run: %s" at
          (Inspect.describe v));
      (match check () with
      | None -> ()
      | Some what -> Alcotest.failf "ckpt crash at %d: %s" at what);
      (* the crash genuinely landed between a checkpoint and the log
         tail: the observer re-snapshotted at least once after the
         initial snapshot before the node died *)
      Alcotest.(check bool)
        (Printf.sprintf "ckpt crash at %d: a periodic snapshot preceded it"
           at)
        true
        (Checkpoint.snapshots ckpt >= 2))
    window

(* ------------------------------------------------------------------ *)
(* QCheck properties: snapshot/restore round-trip and log-replay
   idempotence, over fuzz-scheduled litmus end states and their real
   message logs. *)

let scenario_count = List.length Litmus.scenarios

let run_fuzzed i seed =
  let sc = List.nth Litmus.scenarios (i mod scenario_count) in
  let inst = sc.Litmus.make ~fault:None in
  let log = ref [] in
  let m = Dsm.machine inst.Litmus.handle in
  Machine.add_observer m
    {
      Observer.nil with
      Observer.on_send =
        (fun ~src ~dst ~now:_ msg -> log := (src, dst, msg) :: !log);
    };
  Dsm.run_controlled ~choose:(random_choose seed) inst.Litmus.handle
    inst.Litmus.body;
  (m, List.rev !log)

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot (restore m s) = s" ~count:24
    QCheck.(
      make
        ~print:(fun (i, seed) -> Printf.sprintf "scenario %d, seed %d" i seed)
        Gen.(pair (int_bound (scenario_count - 1)) (int_bound 999)))
    (fun (i, seed) ->
      let m, _ = run_fuzzed i seed in
      let s = Checkpoint.snapshot ~now:0 m in
      Checkpoint.restore m s;
      Checkpoint.snapshot ~now:0 m = s)

let prop_replay_idempotent =
  QCheck.Test.make ~name:"replaying a log prefix twice = once" ~count:24
    QCheck.(
      make
        ~print:(fun (i, seed, k) ->
          Printf.sprintf "scenario %d, seed %d, prefix %d" i seed k)
        Gen.(
          triple
            (int_bound (scenario_count - 1))
            (int_bound 999) (int_bound 200)))
    (fun (i, seed, k) ->
      let m, log = run_fuzzed i seed in
      let prefix =
        List.filteri (fun j _ -> j < k mod (List.length log + 1)) log
      in
      let ok = ref true in
      Checkpoint.iter_blocks m (fun b ->
          let home = Machine.home_of_block m b in
          let img0 = (home, Bitset.singleton home) in
          let once = Checkpoint.replay ~block:b img0 prefix in
          let twice = Checkpoint.replay ~block:b once prefix in
          if not (fst twice = fst once && Bitset.equal (snd twice) (snd once))
          then ok := false);
      !ok)

let () =
  Alcotest.run "crash"
    [
      ( "matrix",
        [
          Alcotest.test_case "crash during in-flight downgrade" `Quick
            test_crash_inflight_downgrade;
          Alcotest.test_case "home crash with remote Exclusive copy" `Quick
            test_crash_home_with_remote_exclusive;
          Alcotest.test_case "crash while holding per-bucket lock" `Quick
            test_crash_holding_kv_lock;
          Alcotest.test_case "crash between checkpoint and log tail" `Quick
            test_crash_checkpoint_log_tail;
        ] );
      ( "checkpoint-properties",
        [
          QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
          QCheck_alcotest.to_alcotest prop_replay_idempotent;
        ] );
    ]
