(* Tests for the deterministic cooperative multiprocessor. *)

module Engine = Shasta_sim.Engine

let test_single_proc () =
  let outcome =
    Engine.run ~nprocs:1 (fun p ->
        Engine.advance p 100;
        Engine.advance p 50)
  in
  Alcotest.(check (array int)) "finish time" [| 150 |] outcome.Engine.finish

let test_min_clock_order () =
  (* The slow processor advances in big steps; the fast one in small
     steps. Recording the global interleaving order must show the
     min-clock property: an event at time t is never recorded after an
     event at time t' > t from another processor's later step. *)
  let log = ref [] in
  ignore
    (Engine.run ~nprocs:2 (fun p ->
         let step = if Engine.pid p = 0 then 10 else 25 in
         for _ = 1 to 4 do
           Engine.advance p step;
           log := (Engine.pid p, Engine.now p) :: !log
         done));
  let events = List.rev !log in
  let times = List.map snd events in
  let sorted = List.sort compare times in
  Alcotest.(check (list int)) "events in global time order" sorted times

let test_determinism () =
  let run () =
    let log = ref [] in
    ignore
      (Engine.run ~nprocs:4 (fun p ->
           for i = 1 to 5 do
             Engine.advance p ((Engine.pid p * 7) + i);
             log := (Engine.pid p, Engine.now p) :: !log
           done));
    !log
  in
  Alcotest.(check bool) "identical logs" true (run () = run ())

let test_advance_local_no_yield () =
  (* advance_local must not yield: between two local advances of proc 0,
     proc 1 (whose clock is smaller) must not run. *)
  let order = ref [] in
  ignore
    (Engine.run ~nprocs:2 (fun p ->
         if Engine.pid p = 0 then begin
           Engine.advance_local p 5;
           order := `A :: !order;
           Engine.advance_local p 5;
           order := `B :: !order;
           Engine.yield p
         end
         else begin
           Engine.yield p;
           order := `C :: !order
         end));
  (* Proc 1 yields at time 0 first, then proc 0 runs A and B back to
     back without interruption, then proc 1's continuation. *)
  Alcotest.(check bool) "A immediately before B" true
    (match List.rev !order with
    | [ `A; `B; `C ] | [ `C; `A; `B ] -> true
    | _ -> false)

let test_cycle_limit () =
  Alcotest.check_raises "limit enforced" (Engine.Cycle_limit 0) (fun () ->
      ignore
        (Engine.run ~nprocs:1 ~max_cycles:1000 (fun p ->
             while true do
               Engine.advance p 100
             done)))

let test_ties_by_pid () =
  (* With identical advances, processors at equal times run in pid
     order. *)
  let log = ref [] in
  ignore
    (Engine.run ~nprocs:3 (fun p ->
         Engine.advance p 10;
         log := Engine.pid p :: !log;
         Engine.advance p 10;
         log := Engine.pid p :: !log));
  Alcotest.(check (list int)) "pid order at equal times" [ 0; 1; 2; 0; 1; 2 ]
    (List.rev !log)

let prop_finish_equals_sum =
  QCheck.Test.make ~name:"finish time equals sum of advances" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 1000))
    (fun steps ->
      let outcome =
        Engine.run ~nprocs:1 (fun p -> List.iter (Engine.advance p) steps)
      in
      outcome.Engine.finish.(0) = List.fold_left ( + ) 0 steps)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "single proc" `Quick test_single_proc;
          Alcotest.test_case "min-clock order" `Quick test_min_clock_order;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "advance_local atomic" `Quick
            test_advance_local_no_yield;
          Alcotest.test_case "cycle limit" `Quick test_cycle_limit;
          Alcotest.test_case "tie-break by pid" `Quick test_ties_by_pid;
          QCheck_alcotest.to_alcotest prop_finish_equals_sum;
        ] );
    ]
