(* Tests for the deterministic cooperative multiprocessor. *)

module Engine = Shasta_sim.Engine

let test_single_proc () =
  let outcome =
    Engine.run ~nprocs:1 (fun p ->
        Engine.advance p 100;
        Engine.advance p 50)
  in
  Alcotest.(check (array int)) "finish time" [| 150 |] outcome.Engine.finish

let test_min_clock_order () =
  (* The slow processor advances in big steps; the fast one in small
     steps. Recording the global interleaving order must show the
     min-clock property: an event at time t is never recorded after an
     event at time t' > t from another processor's later step. *)
  let log = ref [] in
  ignore
    (Engine.run ~nprocs:2 (fun p ->
         let step = if Engine.pid p = 0 then 10 else 25 in
         for _ = 1 to 4 do
           Engine.advance p step;
           log := (Engine.pid p, Engine.now p) :: !log
         done));
  let events = List.rev !log in
  let times = List.map snd events in
  let sorted = List.sort compare times in
  Alcotest.(check (list int)) "events in global time order" sorted times

let test_determinism () =
  let run () =
    let log = ref [] in
    ignore
      (Engine.run ~nprocs:4 (fun p ->
           for i = 1 to 5 do
             Engine.advance p ((Engine.pid p * 7) + i);
             log := (Engine.pid p, Engine.now p) :: !log
           done));
    !log
  in
  Alcotest.(check bool) "identical logs" true (run () = run ())

let test_advance_local_no_yield () =
  (* advance_local must not yield: between two local advances of proc 0,
     proc 1 (whose clock is smaller) must not run. *)
  let order = ref [] in
  ignore
    (Engine.run ~nprocs:2 (fun p ->
         if Engine.pid p = 0 then begin
           Engine.advance_local p 5;
           order := `A :: !order;
           Engine.advance_local p 5;
           order := `B :: !order;
           Engine.yield p
         end
         else begin
           Engine.yield p;
           order := `C :: !order
         end));
  (* Proc 1 yields at time 0 first, then proc 0 runs A and B back to
     back without interruption, then proc 1's continuation. *)
  Alcotest.(check bool) "A immediately before B" true
    (match List.rev !order with
    | [ `A; `B; `C ] | [ `C; `A; `B ] -> true
    | _ -> false)

let test_cycle_limit () =
  Alcotest.check_raises "limit enforced" (Engine.Cycle_limit 0) (fun () ->
      ignore
        (Engine.run ~nprocs:1 ~max_cycles:1000 (fun p ->
             while true do
               Engine.advance p 100
             done)))

let test_ties_by_pid () =
  (* With identical advances, processors at equal times run in pid
     order. *)
  let log = ref [] in
  ignore
    (Engine.run ~nprocs:3 (fun p ->
         Engine.advance p 10;
         log := Engine.pid p :: !log;
         Engine.advance p 10;
         log := Engine.pid p :: !log));
  Alcotest.(check (list int)) "pid order at equal times" [ 0; 1; 2; 0; 1; 2 ]
    (List.rev !log)

let test_horizon_finish_tail () =
  (* Sequential view: bound = max_int. The +1 sharpening applies only
     when no contributor wins the (clock, pid) tie-break. *)
  Alcotest.(check (pair int int))
    "no tie winner: horizon sharpens to h+1" (100, 101)
    (Engine.horizon_finish ~h:100 ~tie_lower:false ~bound:max_int);
  Alcotest.(check (pair int int))
    "tie winner: horizon stays at h" (100, 100)
    (Engine.horizon_finish ~h:100 ~tie_lower:true ~bound:max_int);
  Alcotest.(check (pair int int))
    "no contributors at all" (max_int, max_int)
    (Engine.horizon_finish ~h:max_int ~tie_lower:false ~bound:max_int);
  (* Sharded caps: the bound wins when at-or-below h — no sharpening at
     the bound, a cross-shard message may arrive exactly there. *)
  Alcotest.(check (pair int int))
    "bound below h caps both" (60, 60)
    (Engine.horizon_finish ~h:100 ~tie_lower:false ~bound:60);
  Alcotest.(check (pair int int))
    "bound exactly at h: no +1 past it" (100, 100)
    (Engine.horizon_finish ~h:100 ~tie_lower:false ~bound:100);
  Alcotest.(check (pair int int))
    "bound above h leaves the sequential result" (100, 101)
    (Engine.horizon_finish ~h:100 ~tie_lower:false ~bound:102);
  Alcotest.(check (pair int int))
    "sharpened horizon still clipped to the bound" (100, 101)
    (Engine.horizon_finish ~h:100 ~tie_lower:false ~bound:101)

(* The sharded scheduler summarizes remote shards by a single bound:
   (minimum published clock of the shard) + (minimum cross-pair
   lookahead). When every cross-shard pair shares one lookahead L, that
   bound equals the sequential formula's minimum over the remote
   processors of clock + L, so the boundary horizon must be EQUAL to
   the sequential min over arrival hint + full lookahead matrix — not
   merely conservatively below it. *)
let prop_shard_boundary_horizon =
  QCheck.Test.make ~name:"sharded boundary horizon equals sequential min"
    ~count:200
    QCheck.(
      triple
        (list_of_size (Gen.return 5) (int_range 0 1000)) (* peer clocks *)
        (int_range 1 50) (* cross lookahead L *)
        (option (int_range 0 1200)) (* arrival hint *))
    (fun (clocks, cross_la, hint_opt) ->
      (* Proc 0 (shard 0) resumes; procs 1,2 share its shard (local
         lookahead 0), procs 3,4,5 form shard 1. *)
      let clocks = Array.of_list clocks in
      let hint = match hint_opt with Some h -> h | None -> max_int in
      let la q = if q >= 3 then cross_la else 0 in
      (* Sequential accumulation over all peers (engine's rule). *)
      let h = ref hint and tie = ref false in
      for q = 1 to 5 do
        let b = clocks.(q - 1) + la q in
        if b < !h then begin
          h := b;
          tie := la q > 0 || q < 0
        end
        else if b = !h then tie := !tie || la q > 0 || q < 0
      done;
      let seq = Engine.horizon_finish ~h:!h ~tie_lower:!tie ~bound:max_int in
      (* Sharded: local peers accumulated, remote shard as the bound. *)
      let hl = ref hint and tiel = ref false in
      for q = 1 to 2 do
        let b = clocks.(q - 1) + 0 in
        if b < !hl then begin
          hl := b;
          tiel := false
        end
      done;
      let bound = min (min clocks.(2) clocks.(3)) clocks.(4) + cross_la in
      let sh = Engine.horizon_finish ~h:!hl ~tie_lower:!tiel ~bound in
      sh = seq)

let test_run_sharded_matches_run () =
  (* Compute-only bodies: the sharded engine must produce the identical
     finish clocks with processors split across two domains. Lookahead:
     0 inside a shard, 5 across. *)
  let nprocs = 4 in
  let lookahead =
    Array.init (nprocs * nprocs) (fun k ->
        let p = k / nprocs and q = k mod nprocs in
        if p / 2 = q / 2 then 0 else 5)
  in
  let body p =
    for i = 1 to 3 do
      Engine.advance p ((Engine.pid p * 7) + (i * 3))
    done
  in
  let seq = Engine.run ~nprocs ~lookahead body in
  let shd, stats =
    Engine.run_sharded ~nprocs ~shards:2
      ~shard_of:(fun i -> i / 2)
      ~lookahead
      ~drain:(fun _ -> 0)
      ~cross_sent:(fun () -> 0)
      ~quiet:(fun _ -> true)
      ~on_quiesced:ignore body
  in
  Alcotest.(check (array int))
    "finish clocks identical" seq.Engine.finish shd.Engine.finish;
  Alcotest.(check bool) "every shard resumed processors" true
    (Array.for_all (fun s -> s > 0) stats.Engine.shard_steps)

let test_run_sharded_cross_lookahead_guard () =
  Alcotest.check_raises "zero cross lookahead rejected"
    (Invalid_argument
       "Engine.run_sharded: cross-shard lookahead must be >= 1 (shard by \
        coherence node)") (fun () ->
      ignore
        (Engine.run_sharded ~nprocs:2 ~shards:2
           ~shard_of:(fun i -> i)
           ~lookahead:(Array.make 4 0)
           ~drain:(fun _ -> 0)
           ~cross_sent:(fun () -> 0)
           ~quiet:(fun _ -> true)
           ~on_quiesced:ignore
           (fun p -> Engine.advance p 1)))

let prop_finish_equals_sum =
  QCheck.Test.make ~name:"finish time equals sum of advances" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 1000))
    (fun steps ->
      let outcome =
        Engine.run ~nprocs:1 (fun p -> List.iter (Engine.advance p) steps)
      in
      outcome.Engine.finish.(0) = List.fold_left ( + ) 0 steps)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "single proc" `Quick test_single_proc;
          Alcotest.test_case "min-clock order" `Quick test_min_clock_order;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "advance_local atomic" `Quick
            test_advance_local_no_yield;
          Alcotest.test_case "cycle limit" `Quick test_cycle_limit;
          Alcotest.test_case "tie-break by pid" `Quick test_ties_by_pid;
          QCheck_alcotest.to_alcotest prop_finish_equals_sum;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "horizon_finish tail" `Quick
            test_horizon_finish_tail;
          QCheck_alcotest.to_alcotest prop_shard_boundary_horizon;
          Alcotest.test_case "run_sharded matches run" `Quick
            test_run_sharded_matches_run;
          Alcotest.test_case "cross lookahead guard" `Quick
            test_run_sharded_cross_lookahead_guard;
        ] );
    ]
