(* The structured tracing subsystem as a test oracle.

   A downgrade-heavy two-node workload runs with the flight recorder
   and the metrics registry attached; its event stream is

   - compared against itself across fresh runs and against a checked-in
     snapshot (golden_trace.expected), pinning the protocol's visible
     event sequence across PRs;
   - required to be event-for-event identical under the run-ahead and
     always-yield schedulers — events are attributed to the executing
     processor at its virtual cycle, so the merged stream is a pure
     function of virtual time;
   - required to cost zero simulated cycles (bit-identical clocks with
     and without observers attached);
   - exported as Chrome trace_event JSON whose every object must carry
     ph/ts/pid/tid.

   Regenerate the snapshot (only when a protocol-visible change is
   intended and understood) with:

     SHASTA_GOLDEN_WRITE=$PWD/test/golden_trace.expected \
       dune exec test/test_trace.exe *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Machine = Shasta_core.Machine
module Event = Shasta_trace.Event
module Recorder = Shasta_trace.Recorder
module Metrics = Shasta_trace.Metrics
module Chrome = Shasta_trace.Chrome
module Histogram = Shasta_util.Histogram

let snapshot_file = "golden_trace.expected"

(* Downgrade demo in miniature: two 4-processor nodes; three writers on
   the owning node raise private exclusive entries over a handful of
   blocks, then a processor of the other node reads them all, forcing
   multi-message node downgrades; a lock-protected counter adds sync
   traffic. *)
let workload () =
  let cfg =
    Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4
      ~heap_bytes:(1 lsl 20) ~trace:1 ()
  in
  let h = Dsm.create cfg in
  let blocks = List.init 6 (fun _ -> Dsm.alloc h ~block_size:64 ~home:4 64) in
  (* No [~home] here: homes are page-granular, and re-pinning this page
     would silently move the six blocks above away from proc 4. *)
  let counter = Dsm.alloc h ~block_size:64 8 in
  let lk = Dsm.alloc_lock h in
  let bar = Dsm.alloc_barrier h in
  let body ctx =
    let p = Dsm.pid ctx in
    if p >= 4 && p < 7 then
      List.iter (fun a -> Dsm.store_float ctx a (float_of_int p)) blocks;
    Dsm.barrier ctx bar;
    if p = 0 then List.iter (fun a -> ignore (Dsm.load_float ctx a)) blocks;
    Dsm.lock ctx lk;
    Dsm.store_float ctx counter (Dsm.load_float ctx counter +. 1.0);
    Dsm.unlock ctx lk;
    Dsm.barrier ctx bar
  in
  (h, body)

let run_traced ?run_ahead ?capacity () =
  let h, body = workload () in
  let m = Dsm.machine h in
  let rec_ = Recorder.attach ?capacity m in
  let mx = Metrics.attach m in
  Dsm.run ?run_ahead h body;
  (h, rec_, mx)

let lines ?run_ahead () =
  let _, rec_, _ = run_traced ?run_ahead () in
  List.map Event.to_string (Recorder.events rec_)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* ------------------------------------------------------------------ *)
(* Golden stream *)

let test_repeat_identical () =
  Alcotest.(check (list string)) "two fresh runs agree" (lines ()) (lines ())

let test_matches_snapshot () =
  if not (Sys.file_exists snapshot_file) then
    Alcotest.failf "missing snapshot %s" snapshot_file;
  Alcotest.(check (list string))
    "matches checked-in snapshot" (read_lines snapshot_file) (lines ())

(* The oracle property: the recorder sees the same events in the same
   order whichever scheduler drove the simulation. Structural equality
   over Event.t, not just rendered strings. *)
let test_scheduler_invariant () =
  let _, ra, _ = run_traced ~run_ahead:true () in
  let _, ay, _ = run_traced ~run_ahead:false () in
  let ea = Recorder.events ra and ey = Recorder.events ay in
  Alcotest.(check int) "same event count" (List.length ey) (List.length ea);
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "event %d differs:\n  run-ahead:    %s\n  always-yield: %s"
          i (Event.to_string a) (Event.to_string b))
    (List.combine ea ey)

(* ------------------------------------------------------------------ *)
(* Overhead contract: observers never charge simulated cycles *)

let test_zero_added_cycles () =
  let bare =
    let h, body = workload () in
    Dsm.run h body;
    Dsm.parallel_cycles h
  in
  let traced, _, _ = run_traced () in
  Alcotest.(check int) "tracing adds zero simulated cycles" bare
    (Dsm.parallel_cycles traced)

(* ------------------------------------------------------------------ *)
(* Ring semantics *)

let test_ring_drops_oldest () =
  let _, full, _ = run_traced () in
  let _, small, _ = run_traced ~capacity:16 () in
  Alcotest.(check int) "same events appended" (Recorder.recorded full)
    (Recorder.recorded small);
  Alcotest.(check bool) "small ring dropped some" true
    (Recorder.dropped small > 0);
  Alcotest.(check int) "dropped = appended - retained"
    (Recorder.recorded small - List.length (Recorder.events small))
    (Recorder.dropped small);
  for p = 0 to 7 do
    let f = Recorder.proc_events full p and s = Recorder.proc_events small p in
    Alcotest.(check bool)
      (Printf.sprintf "proc %d retains at most the capacity" p)
      true
      (List.length s <= 16);
    (* flight-recorder semantics: what survives is the newest suffix *)
    let suffix_of l n =
      let rec drop l k = if k <= 0 then l else drop (List.tl l) (k - 1) in
      drop l (List.length l - n)
    in
    Alcotest.(check bool)
      (Printf.sprintf "proc %d retained the newest events" p)
      true
      (s = suffix_of f (List.length s))
  done

(* ------------------------------------------------------------------ *)
(* Filters *)

let test_filters () =
  let _, rec_, _ = run_traced () in
  let events = Recorder.events rec_ in
  let with_f f = List.filter (Event.matches f) events in
  let miss_ends = with_f { Event.no_filter with Event.kinds = [ "miss_end" ] } in
  Alcotest.(check bool) "some miss_end events" true (miss_ends <> []);
  Alcotest.(check bool) "kind filter selects only miss_end" true
    (List.for_all (fun e -> Event.class_name e = "miss_end") miss_ends);
  let p0 = with_f { Event.no_filter with Event.procs = [ 0 ] } in
  Alcotest.(check bool) "proc filter" true
    (p0 <> [] && List.for_all (fun e -> e.Event.proc = 0) p0);
  (match events with
  | [] -> Alcotest.fail "no events"
  | first :: _ ->
    let late =
      with_f { Event.no_filter with Event.from_ = Some (first.Event.time + 1) }
    in
    Alcotest.(check bool) "time filter excludes the first event" true
      (not (List.mem first late)));
  Alcotest.(check int) "no_filter keeps everything" (List.length events)
    (List.length (with_f Event.no_filter))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_sanity () =
  let h, rec_, mx = run_traced () in
  Alcotest.(check bool) "misses observed" true (Metrics.misses mx > 0);
  Alcotest.(check bool) "downgrades observed" true (Metrics.downgrades mx > 0);
  Alcotest.(check int) "every send has a recv" (Metrics.sends mx)
    (Metrics.recvs mx);
  Alcotest.(check int) "one latency sample per miss" (Metrics.misses mx)
    (Histogram.total (Metrics.miss_latency mx));
  Alcotest.(check int) "one rtt sample per node downgrade"
    (Metrics.downgrades mx)
    (Histogram.total (Metrics.downgrade_rtt mx));
  Alcotest.(check int) "one size sample per send" (Metrics.sends mx)
    (Histogram.total (Metrics.msg_size mx));
  let lat = Metrics.miss_latency mx in
  Alcotest.(check bool) "p50 <= p90 <= max" true
    (Histogram.percentile lat 0.5 <= Histogram.percentile lat 0.9
    && Histogram.percentile lat 0.9 <= Histogram.percentile lat 1.0);
  (* the recorder agrees with the counters *)
  let events = Recorder.events rec_ in
  let count cls =
    List.length (List.filter (fun e -> Event.class_name e = cls) events)
  in
  Alcotest.(check int) "recorder misses agree" (Metrics.misses mx)
    (count "miss_end");
  Alcotest.(check int) "recorder sends agree" (Metrics.sends mx) (count "send");
  (* merge is additive *)
  let agg = Metrics.create () in
  Metrics.merge_into ~into:agg mx;
  Metrics.merge_into ~into:agg mx;
  Alcotest.(check int) "merge_into adds counters" (2 * Metrics.misses mx)
    (Metrics.misses agg);
  let json = Metrics.to_json mx in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " in metrics json") true
        (let re = Printf.sprintf "\"%s\"" key in
         let rec find i =
           i + String.length re <= String.length json
           && (String.sub json i (String.length re) = re || find (i + 1))
         in
         find 0))
    [ "misses"; "downgrades"; "miss_latency"; "p50"; "p99"; "msg_kinds" ];
  ignore (Dsm.parallel_cycles h)

(* ------------------------------------------------------------------ *)
(* Chrome export: minimal JSON scan — the array must parse into objects
   and every object must carry ph/ts/pid/tid. *)

type json_tok = Obj_start | Obj_end | Arr_start | Arr_end

(* Tokenize just enough JSON: strings (with escapes) are skipped
   opaquely; everything structural is checked for balance. Returns the
   raw text of each top-level object of the array. *)
let split_objects s =
  let n = String.length s in
  let objs = ref [] and toks = ref [] in
  let depth = ref 0 and start = ref (-1) in
  let i = ref 0 in
  let fail msg = Alcotest.failf "chrome json: %s at byte %d" msg !i in
  while !i < n do
    (match s.[!i] with
    | '"' ->
      incr i;
      let rec skip () =
        if !i >= n then fail "unterminated string"
        else
          match s.[!i] with
          | '\\' -> i := !i + 2; skip ()
          | '"' -> ()
          | _ -> incr i; skip ()
      in
      skip ()
    | '{' ->
      toks := Obj_start :: !toks;
      if !depth = 1 then start := !i;
      incr depth
    | '}' ->
      toks := Obj_end :: !toks;
      decr depth;
      if !depth < 1 then fail "unbalanced }";
      if !depth = 1 then
        objs := String.sub s !start (!i - !start + 1) :: !objs
    | '[' ->
      toks := Arr_start :: !toks;
      if !depth <> 0 then fail "nested array unexpected";
      incr depth
    | ']' ->
      toks := Arr_end :: !toks;
      decr depth
    | _ -> ());
    incr i
  done;
  if !depth <> 0 then Alcotest.fail "chrome json: unbalanced at EOF";
  (match (List.rev !toks, !toks) with
  | Arr_start :: _, Arr_end :: _ -> ()
  | _ -> Alcotest.fail "chrome json: not a top-level array");
  List.rev !objs

let has_key obj key =
  let re = Printf.sprintf "\"%s\":" key in
  let rec find i =
    i + String.length re <= String.length obj
    && (String.sub obj i (String.length re) = re || find (i + 1))
  in
  find 0

let test_chrome_export () =
  let h, rec_, _ = run_traced () in
  let events = Recorder.events rec_ in
  let json =
    Chrome.to_string ~node_of:(Machine.node_of (Dsm.machine h)) events
  in
  let objs = split_objects json in
  Alcotest.(check bool) "objects emitted" true (List.length objs > 0);
  List.iter
    (fun o ->
      List.iter
        (fun k ->
          if not (has_key o k) then
            Alcotest.failf "chrome object missing %S: %s" k o)
        [ "ph"; "ts"; "pid"; "tid" ])
    objs;
  (* at least one duration span (misses happen) and the track metadata *)
  Alcotest.(check bool) "has X duration events" true
    (List.exists (fun o -> has_key o "dur") objs);
  Alcotest.(check bool) "has M metadata events" true
    (List.exists (fun o -> has_key o "args" && has_key o "name") objs)

let () =
  match Sys.getenv_opt "SHASTA_GOLDEN_WRITE" with
  | Some path ->
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) (lines ~run_ahead:false ());
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None ->
    Alcotest.run "trace"
      [
        ( "oracle",
          [
            Alcotest.test_case "repeat identical" `Quick test_repeat_identical;
            Alcotest.test_case "snapshot" `Quick test_matches_snapshot;
            Alcotest.test_case "scheduler event-identity" `Quick
              test_scheduler_invariant;
            Alcotest.test_case "zero added cycles" `Quick test_zero_added_cycles;
          ] );
        ( "recorder",
          [
            Alcotest.test_case "ring drops oldest" `Quick test_ring_drops_oldest;
            Alcotest.test_case "filters" `Quick test_filters;
          ] );
        ( "metrics",
          [ Alcotest.test_case "sanity" `Quick test_metrics_sanity ] );
        ( "chrome",
          [ Alcotest.test_case "export schema" `Quick test_chrome_export ] );
      ]
