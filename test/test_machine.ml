(* Machine-level state: allocation-time ownership, home placement,
   geometry queries and synchronization object allocation. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Machine = Shasta_core.Machine
module Image = Shasta_mem.Image
module State_table = Shasta_mem.State_table
module Layout = Shasta_mem.Layout

let machine () =
  Machine.create (Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 ())

let test_initial_ownership () =
  let m = machine () in
  let a = Machine.alloc m ~block_size:64 ~home:5 256 in
  let home_node = Machine.node_of m 5 in
  let line = Layout.line_of m.Machine.layout a in
  Array.iteri
    (fun n ns ->
      let st = State_table.get ns.Machine.table line in
      if n = home_node then
        Alcotest.(check bool) "home node exclusive" true (st = State_table.Exclusive)
      else begin
        Alcotest.(check bool) "other nodes invalid" true (st = State_table.Invalid);
        Alcotest.(check bool) "flag stamped" true
          (Image.is_flag64 (Image.load64 ns.Machine.image a))
      end)
    m.Machine.nodes;
  Alcotest.(check int) "home lookup" 5 (Machine.home_of_block m a)

let test_home_proc_private_exclusive () =
  let m = machine () in
  let a = Machine.alloc m ~block_size:64 ~home:2 64 in
  let line = Layout.line_of m.Machine.layout a in
  Array.iteri
    (fun p tbl ->
      let expect = if p = 2 then State_table.Exclusive else State_table.Invalid in
      Alcotest.(check bool) (Printf.sprintf "private of %d" p) true
        (State_table.get tbl line = expect))
    m.Machine.privates

let test_place_moves_ownership () =
  let m = machine () in
  let a = Machine.alloc m 8192 in
  Machine.place m ~addr:a ~len:8192 ~proc:6;
  Alcotest.(check int) "rehomed" 6 (Machine.home_of_block m a);
  let line = Layout.line_of m.Machine.layout a in
  let new_node = Machine.node_of m 6 in
  Array.iteri
    (fun n ns ->
      let st = State_table.get ns.Machine.table line in
      Alcotest.(check bool) "only new node valid" true
        (if n = new_node then st = State_table.Exclusive
         else st = State_table.Invalid))
    m.Machine.nodes

let test_block_geometry () =
  let m = machine () in
  let a = Machine.alloc m ~block_size:512 2048 in
  Alcotest.(check int) "base of middle addr" a (Machine.block_base m (a + 300));
  Alcotest.(check int) "block size" 512 (Machine.block_size m (a + 300));
  Alcotest.(check int) "second block base" (a + 512) (Machine.block_base m (a + 700))

let test_sync_allocation () =
  let m = machine () in
  let l1 = Machine.alloc_lock m and l2 = Machine.alloc_lock m in
  Alcotest.(check bool) "distinct locks" true (l1 <> l2);
  let b = Machine.alloc_barrier m in
  Alcotest.(check bool) "barrier exists" true (Hashtbl.mem m.Machine.barriers b);
  Alcotest.(check bool) "lock homes in range" true
    (Machine.lock_home m l1 >= 0 && Machine.lock_home m l1 < 8)

let test_fresh_machine_quiescent () =
  let m = machine () in
  ignore (Machine.alloc m 1024);
  (* No processors have run: not quiescent only because procs unfinished. *)
  Alcotest.(check bool) "not quiescent before run" false (Machine.quiescent m)

let test_node_partition () =
  let cfg = Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:2 () in
  Alcotest.(check int) "nnodes" 4 (Config.nnodes cfg);
  Alcotest.(check (list int)) "node 1 procs" [ 2; 3 ] (Config.procs_of_node cfg 1)

let test_config_validation () =
  Alcotest.check_raises "base clustering"
    (Invalid_argument "Config.create: Base-Shasta requires clustering = 1")
    (fun () ->
      ignore (Config.create ~variant:Config.Base ~nprocs:4 ~clustering:2 ()));
  Alcotest.check_raises "clustering divides node"
    (Invalid_argument "Config.create: clustering must divide procs_per_node")
    (fun () ->
      ignore (Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:3 ()))

let test_poke_peek () =
  let cfg = Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 () in
  let h = Dsm.create cfg in
  let a = Dsm.alloc_floats h ~home:3 4 in
  Dsm.poke_float h (a + 8) 2.5;
  Dsm.poke_int h (a + 16) 77;
  Alcotest.(check (float 0.0)) "peek float" 2.5 (Dsm.peek_float h (a + 8));
  Alcotest.(check int) "peek int" 77 (Dsm.peek_int h (a + 16))

(* Regression for the PR-5 flight-recorder livelock shape: a second
   [~home] allocation landing mid-page on a page homed elsewhere would
   silently re-home the earlier object's bytes and orphan its directory
   entries. The machine must refuse the conflicting pin at allocation
   time — and must keep allowing deliberate same-home packing (several
   small blocks on one pinned page, as the trace tests do). *)
let test_home_footgun_conflict () =
  let m = machine () in
  let a = Machine.alloc m ~block_size:64 ~home:5 64 in
  let ps = m.Machine.layout.Layout.page_size in
  Alcotest.(check bool) "first alloc mid-page follows" true (ps > 64);
  match Machine.alloc m ~block_size:64 ~home:3 64 with
  | _ -> Alcotest.fail "conflicting mid-page ~home pin must raise"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "message names the mid-page conflict" true
      (String.length msg > 0
      && String.sub msg 0 (min 17 (String.length msg)) = "Machine.alloc ~ho");
    (* The refused pin must not have re-homed the earlier object. *)
    Alcotest.(check int) "earlier object keeps its home" 5
      (Machine.home_of_block m a)

let test_home_footgun_same_home_pack () =
  let m = machine () in
  let a = Machine.alloc m ~block_size:64 ~home:4 64 in
  let b = Machine.alloc m ~block_size:64 ~home:4 64 in
  Alcotest.(check int) "first packed block homed" 4 (Machine.home_of_block m a);
  Alcotest.(check int) "second packed block homed" 4 (Machine.home_of_block m b)

let test_home_footgun_page_aligned () =
  let m = machine () in
  let ps = m.Machine.layout.Layout.page_size in
  let a = Machine.alloc m ~block_size:64 ~home:5 ps in
  (* The next allocation starts on a fresh page: any home is fine. *)
  let b = Machine.alloc m ~block_size:64 ~home:3 64 in
  Alcotest.(check int) "full-page pin kept" 5 (Machine.home_of_block m a);
  Alcotest.(check int) "fresh-page pin kept" 3 (Machine.home_of_block m b)

let () =
  Alcotest.run "machine"
    [
      ( "ownership",
        [
          Alcotest.test_case "initial at home" `Quick test_initial_ownership;
          Alcotest.test_case "home private exclusive" `Quick
            test_home_proc_private_exclusive;
          Alcotest.test_case "place moves ownership" `Quick
            test_place_moves_ownership;
        ] );
      ( "geometry",
        [
          Alcotest.test_case "blocks" `Quick test_block_geometry;
          Alcotest.test_case "node partition" `Quick test_node_partition;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ( "setup",
        [
          Alcotest.test_case "sync allocation" `Quick test_sync_allocation;
          Alcotest.test_case "quiescence" `Quick test_fresh_machine_quiescent;
          Alcotest.test_case "poke/peek" `Quick test_poke_peek;
        ] );
      ( "home footgun",
        [
          Alcotest.test_case "conflicting mid-page pin raises" `Quick
            test_home_footgun_conflict;
          Alcotest.test_case "same-home packing allowed" `Quick
            test_home_footgun_same_home_pack;
          Alcotest.test_case "page-aligned pins unaffected" `Quick
            test_home_footgun_page_aligned;
        ] );
    ]
