(* The static-analysis layer: exhaustive model checking of the abstract
   protocol (clean = zero violations, injected faults = reachable
   counterexamples), conformance of real litmus runs against the
   model's label vocabulary, static verification of every registered
   kernel access program plus rejection of crafted-bad ones, and
   lock-order cycle detection. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module App = Shasta_apps.App
module Registry = Shasta_apps.Registry
module Litmus = Shasta_check.Litmus
module Conformance = Shasta_check.Conformance
module Model = Shasta_verify.Model
module Reach = Shasta_verify.Reach
module Conform = Shasta_verify.Conform
module Progcheck = Shasta_verify.Progcheck
module Lockgraph = Shasta_verify.Lockgraph
module Prng = Shasta_util.Prng

(* ------------------------------------------------------------------ *)
(* Model basics. *)

let test_initial_state () =
  let st = Model.initial ~home:2 in
  Alcotest.(check (list string)) "initial state clean" []
    (Model.check_invariants st);
  Alcotest.(check bool) "initial state settled" false (Model.transient st);
  (* No messages in flight: only the 4 loads and 4 stores. *)
  Alcotest.(check int) "initial actions" 8
    (List.length (Model.enabled_actions st))

(* ------------------------------------------------------------------ *)
(* Exhaustive reachability. *)

let clean_result = lazy (Reach.explore Reach.default_params)

let test_clean_reachability () =
  let r = Lazy.force clean_result in
  Alcotest.(check bool) "not capped" false r.Reach.r_capped;
  Alcotest.(check int) "zero violations" 0 (List.length r.Reach.r_violations);
  Alcotest.(check bool) "nontrivial state space" true (r.Reach.r_states > 1000)

let test_clean_coverage () =
  let r = Lazy.force clean_result in
  let d = Reach.dead_report r in
  Alcotest.(check (list string)) "no unexpectedly dead branches" []
    d.Reach.dead_branches;
  (* Every coherence message tag except the structurally dead
     upgrade-forward appears on some reachable edge. *)
  let tag_hit t =
    Hashtbl.fold
      (fun l () acc ->
        acc || match l with Model.L_send { tg; _ } -> tg = t | _ -> false)
      r.Reach.r_labels false
  in
  for t = 0 to Model.coherence_tags - 1 do
    let expect = t <> 5 (* upgrade_fwd *) in
    Alcotest.(check bool)
      (Printf.sprintf "tag %d reachable" t)
      expect (tag_hit t)
  done

let test_fault_exposed fault name () =
  let r =
    Reach.explore
      { Reach.default_params with Reach.fault = Some fault; stop_at_first = true }
  in
  match r.Reach.r_violations with
  | [] -> Alcotest.failf "%s: no violating state reachable" name
  | v :: _ ->
    Alcotest.(check bool)
      (name ^ ": counterexample nonempty")
      true
      (List.length v.Reach.v_trace > 0)

(* ------------------------------------------------------------------ *)
(* Conformance of real runs against the model's label vocabulary. *)

let test_conformance_scenarios () =
  List.iter
    (fun r ->
      Alcotest.(check (list string))
        (r.Conformance.scenario ^ " conformant")
        [] r.Conformance.mismatches)
    (Conformance.check_all ~seeds:16 ())

(* The QCheck face of the same oracle: any (scenario, seed) pair's
   fuzzed run projects only model-vocabulary labels. *)
let conformance_prop =
  let nscen = List.length Litmus.scenarios in
  QCheck.Test.make ~name:"fuzzed schedules conform to the abstract model"
    ~count:64
    QCheck.(
      pair (make Gen.(int_bound (nscen - 1))) (make Gen.(int_bound 1_000_000)))
    (fun (i, seed) ->
      let sc = List.nth Litmus.scenarios i in
      let inst = sc.Litmus.make ~fault:None in
      let conf =
        Conform.make
          ~labels:(Conform.reference_labels ())
          (Dsm.machine inst.Litmus.handle)
      in
      Dsm.add_observer inst.Litmus.handle conf.Conform.observer;
      let prng = Prng.create (0x5eed + (seed * 2654435761)) in
      Dsm.run_controlled
        ~choose:(fun cands -> cands.(Prng.int prng (Array.length cands)))
        inst.Litmus.handle inst.Litmus.body;
      conf.Conform.events () > 0 && conf.Conform.mismatches () = [])

(* ------------------------------------------------------------------ *)
(* Kernel program verification. *)

let test_kernels_verified () =
  Alcotest.(check int) "no findings" 0 (List.length (Registry.verify_kernels ()));
  Alcotest.(check bool) "manifest covers the apps" true
    (List.length (Registry.kernel_manifest ()) >= 20)

let test_registry_find_verifies () =
  (* The first lookup forces kernel verification; with healthy kernels
     it must succeed. *)
  ignore (Registry.find "kv" : App.maker)

let findings_mention instrs ~spec ?consts needle =
  let fs = Progcheck.check_instrs ?consts ~nregs:4 ~spec instrs in
  List.exists
    (fun f ->
      let d = Progcheck.describe_finding f in
      let n = String.length needle in
      let rec scan i =
        i + n <= String.length d && (String.sub d i n = needle || scan (i + 1))
      in
      scan 0)
    fs

let test_bad_programs_rejected () =
  let open Dsm.Prog in
  let sp = Progcheck.spec ~base0:32 ~aux:2 () in
  Alcotest.(check bool) "out of bounds" true
    (findings_mention [ Cldf (0, 0, 32) ] ~spec:sp "out of bounds");
  Alcotest.(check bool) "misaligned" true
    (findings_mention [ Cldf (0, 0, 4) ] ~spec:sp "misaligned");
  Alcotest.(check bool) "wild store" true
    (findings_mention [ Stf (0, 1, 0) ] ~spec:sp "wild access");
  Alcotest.(check bool) "negative charge" true
    (findings_mention [ Charge (-1) ] ~spec:sp "negative charge");
  Alcotest.(check bool) "unbalanced wrap" true
    (findings_mention
       [ Wrap (0, 0) ]
       ~spec:sp
       ~consts:[| -6.0 |]
       "unbalanced wrap");
  Alcotest.(check bool) "raw/checked mix" true
    (findings_mention
       [ Ldf (0, 0, 0); Cldf (1, 0, 8) ]
       ~spec:sp "mixes raw and checked");
  Alcotest.(check bool) "register range" true
    (findings_mention [ Add (7, 0, 0) ] ~spec:sp "register 7 out of range");
  Alcotest.(check bool) "aux range" true
    (findings_mention [ Auxst (0, 5) ] ~spec:sp "aux index 5 out of range")

let test_good_program_accepted () =
  let open Dsm.Prog in
  let p =
    compile ~consts:[| 2.0 |] ~nregs:2
      [ Cldf (0, 0, 0); Mulk (1, 0, 0); Cstf (1, 0, 8); Charge 3 ]
  in
  Alcotest.(check int) "clean program" 0
    (List.length
       (Progcheck.check_prog ~spec:(Progcheck.spec ~base0:16 ()) p))

(* ------------------------------------------------------------------ *)
(* Lock-order analysis. *)

let test_lock_cycle_detected () =
  let g = Lockgraph.create () in
  Lockgraph.add_edge g ~held:1 ~acquired:2;
  Lockgraph.add_edge g ~held:2 ~acquired:1;
  (match Lockgraph.cycles g with
  | [] -> Alcotest.fail "AB/BA cycle not detected"
  | c :: _ ->
    Alcotest.(check bool) "cycle names both locks" true
      (List.sort compare c = [ 1; 2 ]));
  let self = Lockgraph.create () in
  Lockgraph.add_edge self ~held:3 ~acquired:3;
  Alcotest.(check bool) "self cycle detected" true
    (Lockgraph.cycles self = [ [ 3 ] ])

let test_lock_order_acyclic_kv () =
  let g = Lockgraph.create () in
  let inst = (Shasta_apps.Kv.instance : App.maker) () in
  let cfg =
    Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4
      ~heap_bytes:((max (1 lsl 22) inst.App.heap_bytes + 4095) / 4096 * 4096)
      ()
  in
  let h = Dsm.create cfg in
  let body, _ = inst.App.setup h in
  Dsm.add_observer h (Lockgraph.observer g);
  Dsm.run h body;
  Alcotest.(check (list (list Alcotest.int))) "kv acquisitions acyclic" []
    (Lockgraph.cycles g)

(* The observer tracks held sets correctly: nesting two locks in order
   produces exactly the one edge. *)
let test_lock_observer_edges () =
  let g = Lockgraph.create () in
  let o = Lockgraph.observer g in
  let open Shasta_core.Observer in
  o.on_lock_acquired ~proc:0 ~lock:10 ~now:0;
  o.on_lock_acquired ~proc:0 ~lock:11 ~now:1;
  o.on_lock_released ~proc:0 ~lock:11 ~now:2;
  o.on_lock_released ~proc:0 ~lock:10 ~now:3;
  (* Re-acquire in the same order: no new edge, still acyclic. *)
  o.on_lock_acquired ~proc:0 ~lock:10 ~now:4;
  o.on_lock_acquired ~proc:0 ~lock:11 ~now:5;
  Alcotest.(check (list (pair Alcotest.int Alcotest.int))) "one edge"
    [ (10, 11) ] (Lockgraph.edges g);
  Alcotest.(check (list (list Alcotest.int))) "acyclic" [] (Lockgraph.cycles g)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "verify"
    [
      ( "model",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "clean reachability" `Quick test_clean_reachability;
          Alcotest.test_case "branch and tag coverage" `Quick
            test_clean_coverage;
          Alcotest.test_case "skip-private-downgrade exposed" `Quick
            (test_fault_exposed Config.Skip_private_downgrade
               "skip-private-downgrade");
          Alcotest.test_case "skip-flag-stamp exposed" `Quick
            (test_fault_exposed Config.Skip_flag_stamp "skip-flag-stamp");
        ] );
      ( "conformance",
        [
          Alcotest.test_case "litmus scenarios" `Quick
            test_conformance_scenarios;
          QCheck_alcotest.to_alcotest conformance_prop;
        ] );
      ( "progs",
        [
          Alcotest.test_case "registered kernels verified" `Quick
            test_kernels_verified;
          Alcotest.test_case "registry lookup verifies" `Quick
            test_registry_find_verifies;
          Alcotest.test_case "crafted-bad programs rejected" `Quick
            test_bad_programs_rejected;
          Alcotest.test_case "good program accepted" `Quick
            test_good_program_accepted;
        ] );
      ( "locks",
        [
          Alcotest.test_case "crafted cycle detected" `Quick
            test_lock_cycle_detected;
          Alcotest.test_case "observer edge tracking" `Quick
            test_lock_observer_edges;
          Alcotest.test_case "kv lock order acyclic" `Quick
            test_lock_order_acyclic_kv;
        ] );
    ]
