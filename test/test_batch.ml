(* Batched-access semantics (§3.4.4): combined checks, multi-block
   ranges, concurrent batch writers on one block, and the deferred
   invalid-flag machinery under contention. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Machine = Shasta_core.Machine
module Stats = Shasta_core.Stats

let smp () = Dsm.create (Config.create ~variant:Config.Smp ~nprocs:8 ~clustering:4 ())

let test_batch_basic () =
  let h = smp () in
  let a = Dsm.alloc h ~block_size:64 128 in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then begin
        Dsm.batch ctx
          [ (a, 128, Dsm.W) ]
          (fun () ->
            for i = 0 to 15 do
              Dsm.Batch.store_float ctx (a + (8 * i)) (float_of_int i)
            done);
        Dsm.batch ctx
          [ (a, 128, Dsm.R) ]
          (fun () ->
            for i = 0 to 15 do
              Alcotest.(check (float 0.0)) "read back" (float_of_int i)
                (Dsm.Batch.load_float ctx (a + (8 * i)))
            done)
      end)

let test_batch_spanning_blocks () =
  let h = smp () in
  (* A 72-byte record crossing a 64-byte block boundary. *)
  let a = Dsm.alloc h ~block_size:64 256 in
  let rec_base = a + 40 in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 1 then
        Dsm.batch ctx
          [ (rec_base, 72, Dsm.W) ]
          (fun () ->
            for k = 0 to 8 do
              Dsm.Batch.store_float ctx (rec_base + (8 * k)) (float_of_int (100 + k))
            done));
  for k = 0 to 8 do
    Alcotest.(check (float 0.0)) "spanning record" (float_of_int (100 + k))
      (Dsm.peek_float h (rec_base + (8 * k)))
  done

let test_concurrent_batch_writers_one_block () =
  (* Two processors on different nodes batch-write disjoint halves of
     the same 2048-byte block repeatedly; every write must survive the
     replay/merge machinery. *)
  let h = smp () in
  let a = Dsm.alloc h ~block_size:2048 2048 in
  let rounds = 12 in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p = 0 || p = 4 then begin
        let base = if p = 0 then a else a + 1024 in
        for r = 1 to rounds do
          Dsm.batch ctx
            [ (base, 1024, Dsm.W) ]
            (fun () ->
              for i = 0 to 127 do
                Dsm.Batch.store_float ctx (base + (8 * i))
                  (float_of_int ((r * 1000) + i))
              done);
          Dsm.compute ctx 100
        done
      end);
  for i = 0 to 127 do
    Alcotest.(check (float 0.0)) "half A final" (float_of_int ((rounds * 1000) + i))
      (Dsm.peek_float h (a + (8 * i)));
    Alcotest.(check (float 0.0)) "half B final" (float_of_int ((rounds * 1000) + i))
      (Dsm.peek_float h (a + 1024 + (8 * i)))
  done

let test_batch_reader_vs_writer () =
  (* Ocean-style parity split within one block: the writer updates even
     slots while the reader consumes odd slots — element-race-free but
     block-contended. Reads must never see the flag or torn values. *)
  let h = smp () in
  let a = Dsm.alloc h ~block_size:512 512 in
  for i = 0 to 63 do
    Dsm.poke_float h (a + (8 * i)) 1.0
  done;
  let rounds = 15 in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p = 0 then
        for r = 1 to rounds do
          Dsm.batch ctx
            [ (a, 512, Dsm.W) ]
            (fun () ->
              for i = 0 to 31 do
                Dsm.Batch.store_float ctx (a + (16 * i)) (float_of_int r)
              done);
          Dsm.compute ctx 300
        done
      else if p = 4 then
        for _ = 1 to rounds do
          Dsm.batch ctx
            [ (a, 512, Dsm.R) ]
            (fun () ->
              for i = 0 to 31 do
                let v = Dsm.Batch.load_float ctx (a + (16 * i) + 8) in
                Alcotest.(check (float 0.0)) "odd slots stable" 1.0 v
              done);
          Dsm.compute ctx 300
        done);
  Alcotest.(check (float 0.0)) "writer's last round"
    (float_of_int rounds)
    (Dsm.peek_float h a)

let test_no_deferred_flags_after_quiescence () =
  let h = smp () in
  let a = Dsm.alloc h ~block_size:1024 4096 in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      for r = 0 to 9 do
        Dsm.batch ctx
          [ (a + (1024 * (p mod 4)), 512, Dsm.W) ]
          (fun () ->
            for i = 0 to 63 do
              Dsm.Batch.store_float ctx
                (a + (1024 * (p mod 4)) + (8 * i))
                (float_of_int r)
            done)
      done);
  let m = Dsm.machine h in
  Array.iter
    (fun ns ->
      Alcotest.(check int) "no deferred flags" 0
        (Hashtbl.length ns.Machine.deferred_flags);
      Alcotest.(check int) "no batch lines" 0 (Hashtbl.length ns.Machine.batch_lines);
      Alcotest.(check int) "no registered wranges" 0
        (Hashtbl.length ns.Machine.batch_wranges))
    m.Machine.nodes

let test_batch_counts_checks () =
  let h = smp () in
  let a = Dsm.alloc h ~block_size:64 256 in
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then
        Dsm.batch ctx [ (a, 256, Dsm.R) ] (fun () -> ()));
  Alcotest.(check int) "one check per covered line" 4
    (Dsm.aggregate_stats h).Stats.checks

(* Access-program parity: interpreting a compiled [Dsm.Prog] row must be
   indistinguishable in virtual time from the closure formulation it
   replaces — same memory, same finish cycles, same statistics, and
   (with an observer installed) the same per-op hook stream. *)
let daxpy_run ~use_prog ~record =
  let h = smp () in
  let n = 16 in
  let s = 2.0 in
  let dst = Dsm.alloc_floats h ~block_size:128 n in
  let src = Dsm.alloc_floats h ~block_size:128 n in
  for i = 0 to n - 1 do
    Dsm.poke_float h (dst + (8 * i)) (float_of_int (10 + i));
    Dsm.poke_float h (src + (8 * i)) (float_of_int i)
  done;
  let events = ref [] in
  if record then
    Dsm.add_observer h
      {
        Shasta_core.Observer.nil with
        on_load =
          (fun ~proc ~addr ~len ~now ->
            events := (`L, proc, addr, len, now) :: !events);
        on_store =
          (fun ~proc ~addr ~len ~now ->
            events := (`S, proc, addr, len, now) :: !events);
      };
  Dsm.run h (fun ctx ->
      if Dsm.pid ctx = 0 then
        let prog = Dsm.Prog.fms_row ~len:n ~cost:6 in
        Dsm.batch ctx
          [ (dst, n * 8, Dsm.W); (src, n * 8, Dsm.R) ]
          (fun () ->
            if use_prog then
              Dsm.Prog.run ctx prog ~s ~aux:Dsm.Prog.no_aux ~base0:dst
                ~base1:src ~base2:0
            else
              for c = 0 to n - 1 do
                let v = Dsm.Batch.load_float ctx (src + (8 * c)) in
                let d = Dsm.Batch.load_float ctx (dst + (8 * c)) in
                Dsm.Batch.store_float ctx (dst + (8 * c)) (d -. (s *. v));
                Dsm.compute ctx 6
              done));
  let vals = Array.init n (fun i -> Dsm.peek_float h (dst + (8 * i))) in
  (vals, Dsm.parallel_cycles h, Dsm.aggregate_stats h, List.rev !events)

let check_parity ~record () =
  let pv, pc, ps, pe = daxpy_run ~use_prog:true ~record in
  let cv, cc, cs, ce = daxpy_run ~use_prog:false ~record in
  Alcotest.(check (array (float 0.0))) "values" cv pv;
  Alcotest.(check int) "finish cycles" cc pc;
  (* [prog_accesses] is the one stat allowed to differ: it records which
     dispatch mechanism issued the access, which is exactly what the two
     runs vary. *)
  Alcotest.(check int) "prog accesses counted" (16 * 3) ps.Stats.prog_accesses;
  Alcotest.(check int) "closure run has none" 0 cs.Stats.prog_accesses;
  let norm st = { st with Stats.prog_accesses = 0 } in
  Alcotest.(check bool) "stats" true (norm cs = norm ps);
  Alcotest.(check bool) "hook streams" true (ce = pe);
  if record then
    Alcotest.(check int) "per-op hooks fired" (16 * 3) (List.length pe);
  (* Sanity: the daxpy actually ran — dst_i = (10+i) - 2*i. *)
  Alcotest.(check (float 0.0)) "kernel result" (10.0 -. 5.0) pv.(5)

let test_prog_parity_unobserved () = check_parity ~record:false ()
let test_prog_parity_observed () = check_parity ~record:true ()

let test_prog_observed_matches_unobserved_cycles () =
  (* The fused unobserved charge must land on the same finish clock as
     the observed per-op charges. *)
  let _, cyc_obs, _, _ = daxpy_run ~use_prog:true ~record:true in
  let _, cyc_un, _, _ = daxpy_run ~use_prog:true ~record:false in
  Alcotest.(check int) "same finish cycles" cyc_un cyc_obs

let () =
  Alcotest.run "batch"
    [
      ( "semantics",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_batch_basic;
          Alcotest.test_case "block-spanning range" `Quick
            test_batch_spanning_blocks;
          Alcotest.test_case "check accounting" `Quick test_batch_counts_checks;
        ] );
      ( "contention",
        [
          Alcotest.test_case "concurrent writers one block" `Quick
            test_concurrent_batch_writers_one_block;
          Alcotest.test_case "reader vs writer parity" `Quick
            test_batch_reader_vs_writer;
          Alcotest.test_case "clean after quiescence" `Quick
            test_no_deferred_flags_after_quiescence;
        ] );
      ( "access programs",
        [
          Alcotest.test_case "prog parity (unobserved)" `Quick
            test_prog_parity_unobserved;
          Alcotest.test_case "prog parity (observed)" `Quick
            test_prog_parity_observed;
          Alcotest.test_case "observed/unobserved same cycles" `Quick
            test_prog_observed_matches_unobserved_cycles;
        ] );
    ]
