module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module App = Shasta_apps.App

let run_app (inst : App.instance) ~variant ~nprocs ~clustering () =
  let cfg =
    Config.create ~variant ~nprocs ~clustering
      ~heap_bytes:(max (8 * 1024 * 1024) inst.App.heap_bytes) ()
  in
  let h = Dsm.create cfg in
  let body, verify = inst.App.setup h in
  Dsm.run h body;
  Shasta_core.Inspect.assert_invariants (Dsm.machine h);
  let v = verify h in
  Alcotest.(check bool) (inst.App.name ^ ": " ^ v.App.detail) true v.App.ok

let cases name (mk : App.maker) =
  ( name,
    [
      Alcotest.test_case "seq" `Quick
        (run_app (mk ()) ~variant:Config.Base ~nprocs:1 ~clustering:1);
      Alcotest.test_case "base-8" `Quick
        (run_app (mk ()) ~variant:Config.Base ~nprocs:8 ~clustering:1);
      Alcotest.test_case "smp-16x4" `Quick
        (run_app (mk ()) ~variant:Config.Smp ~nprocs:16 ~clustering:4);
      Alcotest.test_case "smp-16x4-vg" `Quick
        (run_app (mk ~vg:true ()) ~variant:Config.Smp ~nprocs:16 ~clustering:4);
    ] )

let () =
  Alcotest.run "apps-quick"
    [
      cases "lu" Shasta_apps.Lu.instance;
      cases "lu-contig" Shasta_apps.Lu_contig.instance;
      cases "ocean" Shasta_apps.Ocean.instance;
      cases "water-nsq" Shasta_apps.Water_nsq.instance;
      cases "water-sp" Shasta_apps.Water_sp.instance;
      cases "barnes" Shasta_apps.Barnes.instance;
      cases "fmm" Shasta_apps.Fmm.instance;
      cases "raytrace" Shasta_apps.Raytrace.instance;
      cases "volrend" Shasta_apps.Volrend.instance;
      cases "kv" Shasta_apps.Kv.instance;
    ]

(* appended: ocean *)
