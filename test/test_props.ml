(* Property-based coherence tests: randomized data-race-free programs
   must observe exactly the values a sequential execution would produce,
   under every protocol variant, clustering degree and block size. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Machine = Shasta_core.Machine

(* A phased ownership program: in phase t, slot s is written (with a
   value derived from (s, t)) by its owner hash(s,t) mod nprocs; after a
   barrier every processor reads a derived subset of slots and checks
   the value from the last phase that wrote them. *)

let owner ~nprocs s t = (s * 2654435761) lxor (t * 40503) |> abs |> fun v -> v mod nprocs

let writes_in_phase ~nslots s t = (s + t) mod 3 = 0 && s < nslots

let value s t = float_of_int ((s * 1000) + t)

let last_write ~nslots s upto =
  let rec go t = if t < 0 then None else if writes_in_phase ~nslots s t then Some t else go (t - 1) in
  go upto

let run_phased ~variant ~nprocs ~clustering ~block_size ~nslots ~nphases ~seed =
  let cfg =
    Config.create ~variant ~nprocs ~clustering ~seed
      ~heap_bytes:(4 * 1024 * 1024) ()
  in
  let h = Dsm.create cfg in
  let arr = Dsm.alloc h ~block_size (8 * nslots) in
  let bar = Dsm.alloc_barrier h in
  let ok = ref true in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      for t = 0 to nphases - 1 do
        for s = 0 to nslots - 1 do
          if writes_in_phase ~nslots s t && owner ~nprocs s t = p then
            Dsm.store_float ctx (arr + (8 * s)) (value s t)
        done;
        Dsm.barrier ctx bar;
        (* read a per-proc, per-phase subset *)
        for s = 0 to nslots - 1 do
          if (s + t + p) mod 4 = 0 then begin
            let v = Dsm.load_float ctx (arr + (8 * s)) in
            let expect =
              match last_write ~nslots s t with
              | Some tw -> value s tw
              | None -> 0.0
            in
            if v <> expect then ok := false
          end
        done;
        Dsm.barrier ctx bar
      done);
  Shasta_core.Inspect.assert_invariants (Dsm.machine h);
  !ok && Machine.quiescent (Dsm.machine h)

let gen_config =
  QCheck.Gen.(
    let* variant_i = int_bound 1 in
    let* clustering = oneofl [ 1; 2; 4 ] in
    let variant, clustering =
      if variant_i = 0 then (Config.Base, 1) else (Config.Smp, clustering)
    in
    let* nprocs = oneofl [ 4; 8; 16 ] in
    let* block_size = oneofl [ 64; 128; 512; 2048 ] in
    let* nslots = int_range 8 96 in
    let* nphases = int_range 2 6 in
    let* seed = int_bound 10000 in
    return (variant, nprocs, clustering, block_size, nslots, nphases, seed))

let print_config (variant, nprocs, clustering, block_size, nslots, nphases, seed) =
  Printf.sprintf "%s nprocs=%d cl=%d bs=%d slots=%d phases=%d seed=%d"
    (match variant with Config.Base -> "base" | Config.Smp -> "smp")
    nprocs clustering block_size nslots nphases seed

let prop_phased_coherence =
  QCheck.Test.make ~name:"phased DRF program sees sequential values" ~count:70
    (QCheck.make ~print:print_config gen_config)
    (fun (variant, nprocs, clustering, block_size, nslots, nphases, seed) ->
      run_phased ~variant ~nprocs ~clustering ~block_size ~nslots ~nphases ~seed)

(* Lock-based counters: random assignment of counters to locks; every
   increment must survive. *)
let run_counters ~variant ~clustering ~ncounters ~rounds ~seed =
  let nprocs = 8 in
  let cfg = Config.create ~variant ~nprocs ~clustering ~seed () in
  let h = Dsm.create cfg in
  let arr = Dsm.alloc h ~block_size:64 (8 * ncounters) in
  let locks = Array.init ncounters (fun _ -> Dsm.alloc_lock h) in
  Dsm.run h (fun ctx ->
      let prng = Dsm.prng ctx in
      for _ = 1 to rounds do
        let c = Shasta_util.Prng.int prng ncounters in
        Dsm.lock ctx locks.(c);
        let v = Dsm.load_float ctx (arr + (8 * c)) in
        Dsm.store_float ctx (arr + (8 * c)) (v +. 1.0);
        Dsm.unlock ctx locks.(c)
      done);
  Shasta_core.Inspect.assert_invariants (Dsm.machine h);
  let total = ref 0.0 in
  for c = 0 to ncounters - 1 do
    total := !total +. Dsm.peek_float h (arr + (8 * c))
  done;
  !total = float_of_int (nprocs * rounds)

let prop_lock_counters =
  QCheck.Test.make ~name:"lock-protected increments never lost" ~count:40
    QCheck.(
      make
        ~print:(fun (cl, nc, r, s) -> Printf.sprintf "cl=%d nc=%d rounds=%d seed=%d" cl nc r s)
        Gen.(
          let* cl = oneofl [ 1; 2; 4 ] in
          let* nc = int_range 1 6 in
          let* r = int_range 5 25 in
          let* s = int_bound 1000 in
          return (cl, nc, r, s)))
    (fun (clustering, ncounters, rounds, seed) ->
      run_counters ~variant:Config.Smp ~clustering ~ncounters ~rounds ~seed
      && run_counters ~variant:Config.Base ~clustering:1 ~ncounters ~rounds ~seed)

(* Directory invariant: after a quiescent run, every block with a valid
   copy somewhere has a consistent directory entry — no busy entries and
   at most one exclusive node. *)
let run_and_check_directory ~seed =
  let nprocs = 8 in
  let cfg = Config.create ~variant:Config.Smp ~nprocs ~clustering:4 ~seed () in
  let h = Dsm.create cfg in
  let nslots = 64 in
  let arr = Dsm.alloc h ~block_size:128 (8 * nslots) in
  let bar = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let prng = Dsm.prng ctx in
      for _ = 1 to 50 do
        let s = Shasta_util.Prng.int prng nslots in
        if Shasta_util.Prng.bool prng then
          Dsm.store_float ctx (arr + (8 * s)) 1.0
        else ignore (Dsm.load_float ctx (arr + (8 * s)))
      done;
      Dsm.barrier ctx bar);
  let m = Dsm.machine h in
  let ok = ref (Machine.quiescent m) in
  let layout = m.Machine.layout in
  for s = 0 to nslots - 1 do
    let line = Shasta_mem.Layout.line_of layout (arr + (8 * s)) in
    let exclusive_nodes = ref 0 and valid_nodes = ref 0 in
    Array.iter
      (fun ns ->
        match Shasta_mem.State_table.get ns.Machine.table line with
        | Shasta_mem.State_table.Exclusive ->
          incr exclusive_nodes;
          incr valid_nodes
        | Shasta_mem.State_table.Shared -> incr valid_nodes
        | Shasta_mem.State_table.Invalid -> ())
      m.Machine.nodes;
    if !exclusive_nodes > 1 then ok := false;
    if !exclusive_nodes = 1 && !valid_nodes > 1 then ok := false;
    if !valid_nodes = 0 then ok := false
  done;
  !ok

let prop_directory_invariants =
  QCheck.Test.make ~name:"single-writer/multi-reader state invariant" ~count:40
    QCheck.(make ~print:string_of_int Gen.(int_bound 10000))
    (fun seed -> run_and_check_directory ~seed)

(* Phased ownership where writers use batched stores over whole slot
   ranges and readers mix batched and plain loads: exercises batch
   markers, deferred flags and store replay under randomized geometry. *)
let run_phased_batched ~clustering ~block_size ~nslots ~nphases ~seed =
  let nprocs = 8 in
  let cfg =
    Config.create ~variant:Config.Smp ~nprocs ~clustering ~seed
      ~heap_bytes:(4 * 1024 * 1024) ()
  in
  let h = Dsm.create cfg in
  let arr = Dsm.alloc h ~block_size (8 * nslots) in
  let bar = Dsm.alloc_barrier h in
  let ok = ref true in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      for t = 0 to nphases - 1 do
        (* Each phase partitions slots into contiguous per-proc spans;
           the owner writes its whole span in one batch. *)
        let lo = p * nslots / nprocs and hi = (p + 1) * nslots / nprocs in
        if hi > lo then
          Dsm.batch ctx
            [ (arr + (8 * lo), 8 * (hi - lo), Dsm.W) ]
            (fun () ->
              for s = lo to hi - 1 do
                Dsm.Batch.store_float ctx (arr + (8 * s)) (value s t)
              done);
        Dsm.barrier ctx bar;
        (* Readers check a rotating span with batched loads and a few
           plain loads. *)
        let q = (p + t + 1) mod nprocs in
        let qlo = q * nslots / nprocs and qhi = (q + 1) * nslots / nprocs in
        if qhi > qlo then begin
          Dsm.batch ctx
            [ (arr + (8 * qlo), 8 * (qhi - qlo), Dsm.R) ]
            (fun () ->
              for s = qlo to qhi - 1 do
                if Dsm.Batch.load_float ctx (arr + (8 * s)) <> value s t then
                  ok := false
              done);
          if Dsm.load_float ctx (arr + (8 * qlo)) <> value qlo t then ok := false
        end;
        Dsm.barrier ctx bar
      done);
  Shasta_core.Inspect.assert_invariants (Dsm.machine h);
  !ok

let prop_phased_batched =
  QCheck.Test.make ~name:"batched DRF program sees sequential values" ~count:50
    QCheck.(
      make
        ~print:(fun (cl, bs, ns, np, s) ->
          Printf.sprintf "cl=%d bs=%d slots=%d phases=%d seed=%d" cl bs ns np s)
        Gen.(
          let* cl = oneofl [ 1; 2; 4 ] in
          let* bs = oneofl [ 64; 256; 2048 ] in
          let* ns = int_range 16 120 in
          let* np = int_range 2 5 in
          let* s = int_bound 10000 in
          return (cl, bs, ns, np, s)))
    (fun (clustering, block_size, nslots, nphases, seed) ->
      run_phased_batched ~clustering ~block_size ~nslots ~nphases ~seed)

(* Vector-clock algebra: [join] must be a least upper bound for the
   [leq] partial order, since the race detector's happens-before
   reasoning rests on exactly these laws. *)
module Vclock = Shasta_check.Vclock

let vc_of_list l =
  let t = Vclock.create (Array.length l) in
  Array.iteri
    (fun i v ->
      for _ = 1 to v do
        Vclock.tick t i
      done)
    l;
  t

let vc_equal w a b =
  let ok = ref true in
  for i = 0 to w - 1 do
    if Vclock.get a i <> Vclock.get b i then ok := false
  done;
  !ok

let vc_join a b =
  let r = Vclock.copy a in
  Vclock.join r b;
  r

let gen_vc_triple =
  QCheck.Gen.(
    let* w = int_range 1 6 in
    let comps = array_size (return w) (int_bound 8) in
    let* a = comps and* b = comps and* c = comps in
    return (w, a, b, c))

let print_vc_triple (w, a, b, c) =
  let s l = String.concat "," (List.map string_of_int (Array.to_list l)) in
  Printf.sprintf "w=%d a=[%s] b=[%s] c=[%s]" w (s a) (s b) (s c)

let prop_vclock_semilattice =
  QCheck.Test.make ~name:"vclock join is a join-semilattice" ~count:300
    (QCheck.make ~print:print_vc_triple gen_vc_triple)
    (fun (w, la, lb, lc) ->
      let a = vc_of_list la and b = vc_of_list lb and c = vc_of_list lc in
      (* commutative, associative, idempotent *)
      vc_equal w (vc_join a b) (vc_join b a)
      && vc_equal w (vc_join (vc_join a b) c) (vc_join a (vc_join b c))
      && vc_equal w (vc_join a a) a
      (* join is an upper bound... *)
      && Vclock.leq a (vc_join a b)
      && Vclock.leq b (vc_join a b)
      (* ...and the least one: any upper bound u of {a,b} dominates it *)
      && (let u = vc_join (vc_join a b) c in
          Vclock.leq (vc_join a b) u))

let prop_vclock_partial_order =
  QCheck.Test.make ~name:"vclock leq is a partial order" ~count:300
    (QCheck.make ~print:print_vc_triple gen_vc_triple)
    (fun (w, la, lb, lc) ->
      let a = vc_of_list la in
      (* reflexive *)
      Vclock.leq a a
      (* antisymmetric on an arbitrary pair *)
      && (let b = vc_of_list lb in
          (not (Vclock.leq a b && Vclock.leq b a)) || vc_equal w a b)
      (* transitive along a constructed chain a <= b' <= c' *)
      && (let b' = vc_join a (vc_of_list lb) in
          let c' = vc_join b' (vc_of_list lc) in
          Vclock.leq a b' && Vclock.leq b' c' && Vclock.leq a c')
      (* leq agrees with join: a <= b iff a |_| b = b *)
      && (let b = vc_of_list lb in
          Vclock.leq a b = vc_equal w (vc_join a b) b))

(* Histogram invariants: total/count/fraction bookkeeping, percentile
   order statistics, and merge linearity — the metrics subsystem's
   summaries (p50/p90/p99) are computed from exactly these. *)
module Histogram = Shasta_util.Histogram

let hist_of_pairs pairs =
  let h = Histogram.create () in
  List.iter (fun (k, n) -> Histogram.add_many h k n) pairs;
  h

let gen_pairs =
  QCheck.Gen.(
    small_list (pair (int_range 0 50) (int_range 1 20)))

let print_pairs pairs =
  String.concat ";" (List.map (fun (k, n) -> Printf.sprintf "%d*%d" k n) pairs)

let prop_histogram_counts =
  QCheck.Test.make ~name:"histogram total/count/fraction bookkeeping"
    ~count:300
    (QCheck.make ~print:print_pairs gen_pairs)
    (fun pairs ->
      let h = hist_of_pairs pairs in
      let expect_total = List.fold_left (fun acc (_, n) -> acc + n) 0 pairs in
      let keys = Histogram.keys h in
      Histogram.total h = expect_total
      && List.for_all
           (fun k ->
             Histogram.count h k
             = List.fold_left
                 (fun acc (k', n) -> if k' = k then acc + n else acc)
                 0 pairs)
           keys
      && List.sort_uniq compare keys = keys (* ascending, no dups *)
      && (keys = []
         || abs_float
              (List.fold_left (fun acc k -> acc +. Histogram.fraction h k) 0. keys
              -. 1.0)
            < 1e-9))

let prop_histogram_percentile =
  QCheck.Test.make ~name:"histogram percentile order statistics" ~count:300
    (QCheck.make
       ~print:(fun (pairs, p1, p2) ->
         Printf.sprintf "[%s] p1=%.3f p2=%.3f" (print_pairs pairs) p1 p2)
       QCheck.Gen.(triple gen_pairs (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (pairs, p1, p2) ->
      let h = hist_of_pairs pairs in
      match Histogram.keys h with
      | [] -> Histogram.percentile h p1 = 0
      | keys ->
        let lo = List.hd keys and hi = List.nth keys (List.length keys - 1) in
        let plo = min p1 p2 and phi = max p1 p2 in
        (* endpoints, membership, bounds, monotonicity *)
        Histogram.percentile h 0. = lo
        && Histogram.percentile h 1. = hi
        && List.mem (Histogram.percentile h p1) keys
        && lo <= Histogram.percentile h p1
        && Histogram.percentile h p1 <= hi
        && Histogram.percentile h plo <= Histogram.percentile h phi
        (* brute-force check against the definition: smallest key whose
           cumulative count reaches ceil(p * total) (at least 1) *)
        && (let target =
              max 1 (int_of_float (ceil (p1 *. float_of_int (Histogram.total h))))
            in
            let rec scan acc = function
              | [] -> assert false
              | k :: rest ->
                let acc = acc + Histogram.count h k in
                if acc >= target then k else scan acc rest
            in
            Histogram.percentile h p1 = scan 0 keys))

let prop_histogram_merge =
  QCheck.Test.make ~name:"histogram merge is pointwise sum" ~count:300
    (QCheck.make
       ~print:(fun (a, b) -> print_pairs a ^ " | " ^ print_pairs b)
       QCheck.Gen.(pair gen_pairs gen_pairs))
    (fun (pa, pb) ->
      let a = hist_of_pairs pa and b = hist_of_pairs pb in
      let m = Histogram.merge a b in
      Histogram.total m = Histogram.total a + Histogram.total b
      && List.for_all
           (fun k -> Histogram.count m k = Histogram.count a k + Histogram.count b k)
           (Histogram.keys m)
      (* inputs unchanged *)
      && Histogram.total a = List.fold_left (fun acc (_, n) -> acc + n) 0 pa
      && Histogram.total b = List.fold_left (fun acc (_, n) -> acc + n) 0 pb)

(* Workload samplers: the YCSB generator's determinism rests on these.
   Same seed must replay the same stream, every draw must stay inside
   the key space, and the zipfian family must actually be skewed — rank
   frequency decreasing in rank. *)
module Sampler = Shasta_workload.Sampler

let gen_sampler =
  QCheck.Gen.(
    let* dist = oneofl [ Sampler.Uniform; Sampler.Zipfian; Sampler.Scrambled ] in
    let* n = int_range 2 5000 in
    let* theta = float_range 0.2 0.99 in
    let* seed = int_bound 100_000 in
    return (dist, n, theta, seed))

let print_sampler (dist, n, theta, seed) =
  Printf.sprintf "%s n=%d theta=%.3f seed=%d"
    (Sampler.dist_to_string dist)
    n theta seed

let draws (dist, n, theta, seed) k =
  let s = Sampler.make dist ~seed ~n ~theta in
  List.init k (fun _ -> Sampler.next s)

let prop_sampler_deterministic =
  QCheck.Test.make ~name:"sampler replays the same stream per seed" ~count:100
    (QCheck.make ~print:print_sampler gen_sampler)
    (fun cfg -> draws cfg 64 = draws cfg 64)

let prop_sampler_support =
  QCheck.Test.make ~name:"sampler draws stay inside [0, n)" ~count:100
    (QCheck.make ~print:print_sampler gen_sampler)
    (fun ((_, n, _, _) as cfg) ->
      List.for_all (fun k -> 0 <= k && k < n) (draws cfg 256))

(* Rank 0 must be drawn more often than rank 7, which must beat rank 63:
   30k draws at theta >= 0.6 over n >= 128 puts the expected gaps far
   beyond sampling noise for any seed. *)
let prop_zipfian_skew =
  QCheck.Test.make ~name:"zipfian rank frequency decreases in rank" ~count:30
    (QCheck.make
       ~print:(fun (n, theta, seed) ->
         Printf.sprintf "n=%d theta=%.3f seed=%d" n theta seed)
       QCheck.Gen.(
         let* n = int_range 128 4096 in
         let* theta = float_range 0.6 0.99 in
         let* seed = int_bound 100_000 in
         return (n, theta, seed)))
    (fun (n, theta, seed) ->
      let s = Sampler.zipfian ~seed ~n ~theta () in
      let counts = Array.make n 0 in
      for _ = 1 to 30_000 do
        let k = Sampler.next s in
        counts.(k) <- counts.(k) + 1
      done;
      counts.(0) > counts.(7) && counts.(7) > counts.(63))

(* A pinned stream: any change to the zipfian math (zeta, eta, the
   three-branch draw) shows up here as a concrete diff, not a silent
   distribution shift. *)
let test_zipfian_golden () =
  let s = Sampler.zipfian ~seed:12345 ~n:1000 ~theta:0.99 () in
  let got = List.init 8 (fun _ -> Sampler.next s) in
  Alcotest.(check (list int))
    "first 8 draws of zipfian(n=1000, theta=0.99, seed=12345)"
    [ 21; 15; 29; 890; 20; 19; 80; 101 ]
    got

let () =
  Alcotest.run "props"
    [
      ( "coherence",
        [
          QCheck_alcotest.to_alcotest prop_phased_coherence;
          QCheck_alcotest.to_alcotest prop_phased_batched;
          QCheck_alcotest.to_alcotest prop_lock_counters;
          QCheck_alcotest.to_alcotest prop_directory_invariants;
        ] );
      ( "vclock",
        [
          QCheck_alcotest.to_alcotest prop_vclock_semilattice;
          QCheck_alcotest.to_alcotest prop_vclock_partial_order;
        ] );
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest prop_histogram_counts;
          QCheck_alcotest.to_alcotest prop_histogram_percentile;
          QCheck_alcotest.to_alcotest prop_histogram_merge;
        ] );
      ( "sampler",
        [
          QCheck_alcotest.to_alcotest prop_sampler_deterministic;
          QCheck_alcotest.to_alcotest prop_sampler_support;
          QCheck_alcotest.to_alcotest prop_zipfian_skew;
          Alcotest.test_case "zipfian golden stream" `Quick
            test_zipfian_golden;
        ] );
    ]
