(* Deterministic regressions: the exact configurations under which
   protocol bugs were found during development (mostly by the QCheck
   properties, whose discovery seeds vary run to run). Each case pins
   the scenario so it can never silently return.

   The bugs, in the order they were found (see DESIGN.md 5b):
   1. read-forward deadlock against a pending upgrade's busy queue;
   2. deferred-reply self-delivery clobbering a fresh exclusive grant;
   3. transaction-overlap assert (new request over an ack-draining entry);
   4. batch livelock when two nodes fight over one block;
   5. stale shared copy kept by a node with a pending write entry;
   6. invalid-flag stamp preserving ranges of an already-serialized store;
   7. home forwarding to a new owner whose data had not arrived
      (ownership acks now come from the requester);
   8. home's own node invalidated asynchronously by its own transaction
      (home-node invalidations now run inline);
   9. store merged into a data-ready entry that no future reply covers;
   10. private entry raised back to exclusive during a pending downgrade.

   This file also absorbed the one-shot debug drivers (debug_repro.ml,
   debug_hang.ml) that once lived beside it: their scenarios are pinned
   below, and the hang-dump capability moved to `shasta_cli trace`
   (which prints the machine state and the freshest trace events on a
   cycle-limit hang). *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Machine = Shasta_core.Machine
module App = Shasta_apps.App

let value s t = float_of_int ((s * 1000) + t)

(* Mirror of test_props.run_phased with pinned parameters. *)
let phased ~variant ~nprocs ~clustering ~block_size ~nslots ~nphases ~seed () =
  let owner s t = (s * 2654435761) lxor (t * 40503) |> abs |> fun v -> v mod nprocs in
  let writes s t = (s + t) mod 3 = 0 && s < nslots in
  let last_write s upto =
    let rec go t = if t < 0 then None else if writes s t then Some t else go (t - 1) in
    go upto
  in
  let cfg =
    Config.create ~variant ~nprocs ~clustering ~seed ~heap_bytes:(4 * 1024 * 1024) ()
  in
  let h = Dsm.create cfg in
  let arr = Dsm.alloc h ~block_size (8 * nslots) in
  let bar = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      for t = 0 to nphases - 1 do
        for s = 0 to nslots - 1 do
          if writes s t && owner s t = p then
            Dsm.store_float ctx (arr + (8 * s)) (value s t)
        done;
        Dsm.barrier ctx bar;
        for s = 0 to nslots - 1 do
          if (s + t + p) mod 4 = 0 then begin
            let v = Dsm.load_float ctx (arr + (8 * s)) in
            let expect =
              match last_write s t with Some tw -> value s tw | None -> 0.0
            in
            Alcotest.(check (float 0.0))
              (Printf.sprintf "phase %d slot %d" t s)
              expect v
          end
        done;
        Dsm.barrier ctx bar
      done);
  Shasta_core.Inspect.assert_invariants (Dsm.machine h)

(* Mirror of test_props.run_counters with pinned parameters. *)
let counters ~variant ~clustering ~ncounters ~rounds ~seed () =
  let nprocs = 8 in
  let cfg = Config.create ~variant ~nprocs ~clustering ~seed () in
  let h = Dsm.create cfg in
  let arr = Dsm.alloc h ~block_size:64 (8 * ncounters) in
  let locks = Array.init ncounters (fun _ -> Dsm.alloc_lock h) in
  Dsm.run h (fun ctx ->
      let prng = Dsm.prng ctx in
      for _ = 1 to rounds do
        let c = Shasta_util.Prng.int prng ncounters in
        Dsm.lock ctx locks.(c);
        let v = Dsm.load_float ctx (arr + (8 * c)) in
        Dsm.store_float ctx (arr + (8 * c)) (v +. 1.0);
        Dsm.unlock ctx locks.(c)
      done);
  let total = ref 0.0 in
  for c = 0 to ncounters - 1 do
    total := !total +. Dsm.peek_float h (arr + (8 * c))
  done;
  Alcotest.(check (float 0.0)) "all increments" (float_of_int (nprocs * rounds)) !total

(* Mirror of test_props.run_phased_batched with pinned parameters. *)
let batched ~clustering ~block_size ~nslots ~nphases ~seed () =
  let nprocs = 8 in
  let cfg =
    Config.create ~variant:Config.Smp ~nprocs ~clustering ~seed
      ~heap_bytes:(4 * 1024 * 1024) ()
  in
  let h = Dsm.create cfg in
  let arr = Dsm.alloc h ~block_size (8 * nslots) in
  let bar = Dsm.alloc_barrier h in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      for t = 0 to nphases - 1 do
        let lo = p * nslots / nprocs and hi = (p + 1) * nslots / nprocs in
        if hi > lo then
          Dsm.batch ctx
            [ (arr + (8 * lo), 8 * (hi - lo), Dsm.W) ]
            (fun () ->
              for s = lo to hi - 1 do
                Dsm.Batch.store_float ctx (arr + (8 * s)) (value s t)
              done);
        Dsm.barrier ctx bar;
        let q = (p + t + 1) mod nprocs in
        let qlo = q * nslots / nprocs and qhi = (q + 1) * nslots / nprocs in
        if qhi > qlo then begin
          Dsm.batch ctx
            [ (arr + (8 * qlo), 8 * (qhi - qlo), Dsm.R) ]
            (fun () ->
              for s = qlo to qhi - 1 do
                Alcotest.(check (float 0.0))
                  (Printf.sprintf "batched phase %d slot %d" t s)
                  (value s t)
                  (Dsm.Batch.load_float ctx (arr + (8 * s)))
              done);
          Alcotest.(check (float 0.0)) "plain reread" (value qlo t)
            (Dsm.load_float ctx (arr + (8 * qlo)))
        end;
        Dsm.barrier ctx bar
      done);
  Shasta_core.Inspect.assert_invariants (Dsm.machine h)

(* Water-Nsq with 2048-byte blocks under SMP stressed most of the
   historical store-merge and flag-stamp bugs. *)
let water_nsq_vg () =
  let inst = Shasta_apps.Water_nsq.instance ~vg:true () in
  let cfg = Config.create ~variant:Config.Smp ~nprocs:16 ~clustering:4 () in
  let h = Dsm.create cfg in
  let body, verify = inst.App.setup h in
  Dsm.run h body;
  Shasta_core.Inspect.assert_invariants (Dsm.machine h);
  let v = verify h in
  Alcotest.(check bool) v.App.detail true v.App.ok

(* Dsm.peek scans every node for a valid copy and must prefer an
   Exclusive one over a Shared one wherever each sits in the scan order
   (the Shared-handling arm once used a polymorphic [= None] compare;
   now a pattern match, pinned here). The states are forged directly —
   a correct protocol never leaves Shared and Exclusive coexisting. *)
let peek_prefers_exclusive () =
  let module ST = Shasta_mem.State_table in
  let module Image = Shasta_mem.Image in
  let check_order ~exclusive_node ~shared_node =
    let cfg = Config.create ~variant:Config.Base ~nprocs:3 () in
    let h = Dsm.create cfg in
    let addr = Dsm.alloc h ~block_size:64 ~home:1 64 in
    let m = Dsm.machine h in
    let line = Shasta_mem.Layout.line_of m.Machine.layout addr in
    Array.iter
      (fun ns -> ST.set ns.Machine.table line ST.Invalid)
      m.Machine.nodes;
    ST.set m.Machine.nodes.(shared_node).Machine.table line ST.Shared;
    Image.store_float m.Machine.nodes.(shared_node).Machine.image addr 1.0;
    ST.set m.Machine.nodes.(exclusive_node).Machine.table line ST.Exclusive;
    Image.store_float m.Machine.nodes.(exclusive_node).Machine.image addr 2.0;
    Alcotest.(check (float 0.0))
      (Printf.sprintf "exclusive@%d over shared@%d" exclusive_node shared_node)
      2.0 (Dsm.peek_float h addr)
  in
  (* Shared encountered before the Exclusive copy, and after it. *)
  check_order ~exclusive_node:2 ~shared_node:0;
  check_order ~exclusive_node:0 ~shared_node:2

(* Water-Sp under Base deadlocked on the forward-vs-upgrade busy queue. *)
let water_sp_base () =
  let inst = Shasta_apps.Water_sp.instance () in
  let cfg = Config.create ~variant:Config.Base ~nprocs:8 () in
  let h = Dsm.create cfg in
  let body, verify = inst.App.setup h in
  Dsm.run h body;
  let v = verify h in
  Alcotest.(check bool) v.App.detail true v.App.ok

let () =
  Alcotest.run "regressions"
    [
      ( "historical counterexamples",
        [
          Alcotest.test_case "counters cl1 nc2 seed126 (flag-skip)" `Quick
            (counters ~variant:Config.Base ~clustering:1 ~ncounters:2 ~rounds:8
               ~seed:126);
          Alcotest.test_case "counters smp cl1 nc2 seed90" `Quick
            (counters ~variant:Config.Smp ~clustering:1 ~ncounters:2 ~rounds:23
               ~seed:90);
          Alcotest.test_case "phased smp16 cl4 bs64 seed5911 (inline inval)"
            `Quick
            (phased ~variant:Config.Smp ~nprocs:16 ~clustering:4 ~block_size:64
               ~nslots:32 ~nphases:4 ~seed:5911);
          Alcotest.test_case "phased smp8 cl4 bs512 seed2658 (requester ack)"
            `Quick
            (phased ~variant:Config.Smp ~nprocs:8 ~clustering:4 ~block_size:512
               ~nslots:62 ~nphases:5 ~seed:2658);
          Alcotest.test_case "batched cl2 bs64 seed709 (private raise in pdg)"
            `Quick
            (batched ~clustering:2 ~block_size:64 ~nslots:16 ~nphases:3 ~seed:709);
          Alcotest.test_case "peek prefers exclusive copy" `Quick
            peek_prefers_exclusive;
          Alcotest.test_case "water-nsq vg smp-16x4 (store merge family)"
            `Slow water_nsq_vg;
          Alcotest.test_case "water-sp base-8 (fwd deadlock)" `Slow water_sp_base;
        ] );
    ]
