(* Smoke tests of the experiment harness at reduced scale: each renderer
   must produce a non-empty table containing its expected structure, and
   the run cache must be shared across experiments. *)

module E = Shasta_experiments

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let check_contains out parts =
  List.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "output mentions %S" p) true
        (contains out p))
    parts

let scale = 0.4

let test_table1 () =
  let out = E.Exp_checking_overhead.render ~scale () in
  check_contains out [ "Table 1"; "lu"; "raytrace"; "average overhead" ]

let test_micro () =
  let out = E.Exp_microbench.render () in
  check_contains out [ "2-hop"; "downgrade"; "us" ]

let test_fig8 () =
  let out = E.Exp_downgrade_dist.render ~procs:[ 8 ] ~scale () in
  check_contains out [ "Figure 8"; "0 msgs"; "3 msgs"; "water-nsq" ]

let test_speedup_consistency () =
  (* The cached sequential run must make speedups consistent across
     calls: same spec, same result. *)
  let s1 = E.Runner.speedup (E.Runner.base ~scale "ocean" 4) in
  let s2 = E.Runner.speedup (E.Runner.base ~scale "ocean" 4) in
  Alcotest.(check (float 0.0)) "deterministic cached speedup" s1 s2;
  Alcotest.(check bool) "cache populated" true (E.Runner.cache_size () > 0)

let test_run_verifies () =
  let r = E.Runner.run (E.Runner.smp ~scale "water-sp" 8 ~clustering:4) in
  Alcotest.(check bool) "verdict ok" true r.E.Runner.verdict.Shasta_apps.App.ok;
  Alcotest.(check bool) "produced misses" true
    (Shasta_core.Stats.total_misses r.E.Runner.stats > 0)

let test_run_batch_once_semantics () =
  let s1 = E.Runner.base ~scale "lu" 2 in
  let s2 = E.Runner.smp ~scale "lu" 2 ~clustering:2 in
  let s3 = E.Runner.base ~scale "volrend" 2 in
  (* Warm one spec in place first: the batch must dedup against the
     cache, not just within itself. *)
  let pre = E.Runner.run s1 in
  let c0 = E.Runner.simulated_cycles () in
  E.Runner.run_batch ~jobs:2 [ s1; s2; s3; s2; s1 ];
  let c1 = E.Runner.simulated_cycles () in
  (* Exactly the two fresh specs executed, each exactly once: the cycle
     delta equals the sum of their parallel times. *)
  Alcotest.(check int) "fresh specs executed once each"
    ((E.Runner.run s2).E.Runner.parallel_cycles
    + (E.Runner.run s3).E.Runner.parallel_cycles)
    (c1 - c0);
  E.Runner.run_batch ~jobs:2 [ s1; s2; s3 ];
  Alcotest.(check int) "re-batch executes nothing" c1
    (E.Runner.simulated_cycles ());
  Alcotest.(check bool) "pre-batch cache entry untouched" true
    (E.Runner.run s1 == pre)

let test_batch_matches_inplace () =
  (* A spec executed on a worker domain must land in the cache with the
     same observable result as in-place execution of its twin spec
     (determinism across domains; the CI diff of --jobs 1 vs default
     pins the same property end-to-end on whole tables). *)
  let spec = E.Runner.smp ~scale "fmm" 4 ~clustering:2 in
  E.Runner.run_batch ~jobs:2 [ spec ];
  let batched = E.Runner.run spec in
  let inplace = E.Runner.run { spec with E.Runner.checks = false } in
  (* Different checks flag => different spec => fresh in-place run; the
     batched run must agree on everything checks cannot change. *)
  Alcotest.(check bool) "batched run verified" true
    batched.E.Runner.verdict.Shasta_apps.App.ok;
  Alcotest.(check bool) "in-place run verified" true
    inplace.E.Runner.verdict.Shasta_apps.App.ok;
  Alcotest.(check string) "same workload" inplace.E.Runner.workload
    batched.E.Runner.workload

let test_messages_split () =
  let r = E.Runner.run (E.Runner.smp ~scale "ocean" 8 ~clustering:4) in
  Alcotest.(check bool) "remote messages" true (r.E.Runner.remote_msgs > 0);
  Alcotest.(check bool) "downgrades counted separately" true
    (r.E.Runner.downgrade_msgs >= 0 && r.E.Runner.local_msgs >= 0)

let () =
  Alcotest.run "experiments"
    [
      ( "renderers",
        [
          Alcotest.test_case "table 1" `Quick test_table1;
          Alcotest.test_case "microbench" `Quick test_micro;
          Alcotest.test_case "figure 8" `Quick test_fig8;
        ] );
      ( "runner",
        [
          Alcotest.test_case "cached speedups" `Quick test_speedup_consistency;
          Alcotest.test_case "runs verify" `Quick test_run_verifies;
          Alcotest.test_case "message split" `Quick test_messages_split;
          Alcotest.test_case "run_batch once-semantics" `Quick
            test_run_batch_once_semantics;
          Alcotest.test_case "run_batch matches in-place" `Quick
            test_batch_matches_inplace;
        ] );
    ]
