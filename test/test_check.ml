(* The lib/check analysis layer: online sanitizer, happens-before race
   detector, and the litmus model checker — clean on the healthy
   protocol, and every injected fault caught by both the online
   sanitizer and the litmus explorer. *)

module Dsm = Shasta_core.Dsm
module Config = Shasta_core.Config
module Inspect = Shasta_core.Inspect
module Sanitizer = Shasta_check.Sanitizer
module Races = Shasta_check.Races
module Litmus = Shasta_check.Litmus

let find_scenario name =
  List.find (fun sc -> sc.Litmus.name = name) Litmus.scenarios

(* ------------------------------------------------------------------ *)
(* Online sanitizer *)

let test_sanitizer_clean () =
  List.iter
    (fun sc ->
      let inst = sc.Litmus.make ~fault:None in
      let san = Sanitizer.attach (Dsm.machine inst.Litmus.handle) in
      Dsm.run inst.Litmus.handle inst.Litmus.body;
      Alcotest.(check bool)
        (sc.Litmus.name ^ " checked transitions")
        true
        (Sanitizer.events san > 0);
      Alcotest.(check int) (sc.Litmus.name ^ " violations") 0
        (Sanitizer.violation_count san);
      Sanitizer.check san)
    Litmus.scenarios

let catches_fault name fault =
  let sc = find_scenario name in
  let inst = sc.Litmus.make ~fault:(Some fault) in
  let san = Sanitizer.attach (Dsm.machine inst.Litmus.handle) in
  let raised =
    try
      Dsm.run inst.Litmus.handle inst.Litmus.body;
      false
    with Inspect.Violation _ -> true
  in
  Alcotest.(check bool) (name ^ " online sanitizer caught the fault") true
    (Sanitizer.violation_count san > 0);
  Alcotest.(check bool) (name ^ " barrier sweep raised") true raised

let test_sanitizer_skip_private () =
  catches_fault "lock-counter" Config.Skip_private_downgrade

let test_sanitizer_skip_flag () = catches_fault "store-steal" Config.Skip_flag_stamp

(* ------------------------------------------------------------------ *)
(* Happens-before race detector *)

(* One 2-processor node, no synchronization: the sibling store/load
   conflict is invisible to the protocol (both accesses hit the node's
   copy), which is exactly the pair the detector must flag. *)
let racy_pair ~sync =
  let cfg =
    Config.create ~variant:Config.Smp ~nprocs:2 ~procs_per_node:2 ~clustering:2
      ~heap_bytes:(64 * 1024) ()
  in
  let h = Dsm.create cfg in
  let x = Dsm.alloc h ~home:0 8 in
  let b = Dsm.alloc_barrier h in
  let rd = Races.attach (Dsm.machine h) in
  Dsm.run h (fun ctx ->
      let p = Dsm.pid ctx in
      if p = 0 then Dsm.store_int ctx x 1;
      if sync then Dsm.barrier ctx b;
      if p = 1 then ignore (Dsm.load_int ctx x));
  rd

let test_races_flags_unsynchronized () =
  let rd = racy_pair ~sync:false in
  Alcotest.(check bool) "race reported" true (Races.race_count rd > 0);
  match Races.races rd with
  | [] -> Alcotest.fail "expected a race record"
  | r :: _ ->
    Alcotest.(check bool) "distinct processors" true
      (r.Races.first_proc <> r.Races.second_proc);
    Alcotest.(check bool) "a store is involved" true
      (r.Races.first_kind = Races.Store || r.Races.second_kind = Races.Store);
    Alcotest.(check bool) "describe renders" true
      (String.length (Races.describe r) > 10)

let test_races_clean_when_synchronized () =
  let rd = racy_pair ~sync:true in
  Alcotest.(check int) "no races" 0 (Races.race_count rd)

let test_races_clean_on_suite () =
  List.iter
    (fun sc ->
      let inst = sc.Litmus.make ~fault:None in
      let rd = Races.attach (Dsm.machine inst.Litmus.handle) in
      Dsm.run inst.Litmus.handle inst.Litmus.body;
      Alcotest.(check int) (sc.Litmus.name ^ " race-free") 0
        (Races.race_count rd))
    Litmus.scenarios

(* ------------------------------------------------------------------ *)
(* Litmus model checker *)

(* Budget 1 keeps the unit test fast; CI runs the full budget-2 sweep
   through the CLI. *)
let test_litmus_suite_clean () =
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Litmus.scenario ^ " explored") true
        (r.Litmus.decision_points > 0);
      Alcotest.(check bool) (r.Litmus.scenario ^ " uncapped") false
        r.Litmus.capped;
      Alcotest.(check int)
        (r.Litmus.scenario ^ " failures")
        0
        (List.length r.Litmus.failures))
    (Litmus.check_all ~budget:1 ())

let litmus_catches fault =
  let reports = Litmus.check_all ~fault ~budget:0 () in
  Alcotest.(check bool) "some scenario failed" true
    (List.exists (fun r -> r.Litmus.failures <> []) reports)

let test_litmus_skip_private () = litmus_catches Config.Skip_private_downgrade
let test_litmus_skip_flag () = litmus_catches Config.Skip_flag_stamp

(* ------------------------------------------------------------------ *)
(* Controlled execution *)

(* Index 0 at every decision point IS the default schedule: the
   controlled run must agree with the normal engine on both the
   application outcome and the simulated clock. *)
let test_controlled_matches_default () =
  let sc = find_scenario "two-sharer-upgrade" in
  let inst = sc.Litmus.make ~fault:None in
  Dsm.run inst.Litmus.handle inst.Litmus.body;
  (match inst.Litmus.final () with
  | None -> ()
  | Some what -> Alcotest.fail ("default run: " ^ what));
  let cycles = Dsm.parallel_cycles inst.Litmus.handle in
  let inst' = sc.Litmus.make ~fault:None in
  Dsm.run_controlled ~choose:(fun cands -> cands.(0)) inst'.Litmus.handle
    inst'.Litmus.body;
  (match inst'.Litmus.final () with
  | None -> ()
  | Some what -> Alcotest.fail ("controlled run: " ^ what));
  Alcotest.(check int) "same simulated cycles" cycles
    (Dsm.parallel_cycles inst'.Litmus.handle)

let () =
  Alcotest.run "check"
    [
      ( "sanitizer",
        [
          Alcotest.test_case "clean on healthy suite" `Quick test_sanitizer_clean;
          Alcotest.test_case "catches skipped private downgrade" `Quick
            test_sanitizer_skip_private;
          Alcotest.test_case "catches skipped flag stamp" `Quick
            test_sanitizer_skip_flag;
        ] );
      ( "races",
        [
          Alcotest.test_case "flags unsynchronized siblings" `Quick
            test_races_flags_unsynchronized;
          Alcotest.test_case "clean when synchronized" `Quick
            test_races_clean_when_synchronized;
          Alcotest.test_case "clean on healthy suite" `Quick
            test_races_clean_on_suite;
        ] );
      ( "litmus",
        [
          Alcotest.test_case "suite clean at budget 1" `Quick
            test_litmus_suite_clean;
          Alcotest.test_case "catches skipped private downgrade" `Quick
            test_litmus_skip_private;
          Alcotest.test_case "catches skipped flag stamp" `Quick
            test_litmus_skip_flag;
        ] );
      ( "controlled",
        [
          Alcotest.test_case "index 0 is the default schedule" `Quick
            test_controlled_matches_default;
        ] );
    ]
